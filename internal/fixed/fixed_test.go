package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 0.25, 0.5, 0.75, 0.999, 1.0 / 3.0}
	for _, f := range cases {
		q := FromFloat(f)
		if got := q.Float(); math.Abs(got-f) > 1.0/q15Scale {
			t.Errorf("FromFloat(%v).Float() = %v, want within 2^-15", f, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(-0.5) != 0 {
		t.Errorf("FromFloat(-0.5) = %v, want 0", FromFloat(-0.5))
	}
	if FromFloat(1.5) != OneQ15 {
		t.Errorf("FromFloat(1.5) = %v, want OneQ15", FromFloat(1.5))
	}
	if FromFloat(1.0) != OneQ15 {
		t.Errorf("FromFloat(1.0) = %v, want OneQ15", FromFloat(1.0))
	}
}

func TestUQ16FromFloat(t *testing.T) {
	if UQ16FromFloat(0) != 0 {
		t.Error("UQ16FromFloat(0) != 0")
	}
	if UQ16FromFloat(1) != 0xFFFF {
		t.Error("UQ16FromFloat(1) != 0xFFFF")
	}
	u := UQ16FromFloat(0.5)
	if math.Abs(u.Float()-0.5) > 1.0/uq16Scale {
		t.Errorf("UQ16FromFloat(0.5).Float() = %v", u.Float())
	}
}

func TestAddSat(t *testing.T) {
	if AddSat(OneQ15, OneQ15) != OneQ15 {
		t.Error("AddSat must saturate at OneQ15")
	}
	if AddSat(0x4000, 0x2000) != 0x6000 {
		t.Errorf("AddSat(0.5,0.25) = %#x", AddSat(0x4000, 0x2000))
	}
	if AddSat(0, 0) != 0 {
		t.Error("AddSat(0,0) != 0")
	}
}

func TestSubSat(t *testing.T) {
	if SubSat(0x2000, 0x4000) != 0 {
		t.Error("SubSat must clamp at 0")
	}
	if SubSat(OneQ15, 0) != OneQ15 {
		t.Error("SubSat(1,0) != 1")
	}
	if SubSat(0x4000, 0x1000) != 0x3000 {
		t.Errorf("SubSat = %#x", SubSat(0x4000, 0x1000))
	}
}

func TestMul(t *testing.T) {
	half := FromFloat(0.5)
	quarter := Mul(half, half)
	if math.Abs(quarter.Float()-0.25) > 2.0/q15Scale {
		t.Errorf("0.5*0.5 = %v", quarter.Float())
	}
	if Mul(0, OneQ15) != 0 {
		t.Error("0*1 != 0")
	}
	// Negative inputs are clamped, never produce garbage.
	if Mul(-1, OneQ15) != 0 {
		t.Error("Mul with negative input must clamp to 0")
	}
}

func TestRecipExactness(t *testing.T) {
	// For the paper's Table 1 dmax values.
	for _, dmax := range []uint16{2, 8, 36} {
		r := Recip(dmax)
		want := 1.0 / float64(dmax+1)
		if math.Abs(r.Float()-want) > 1.0/uq16Scale {
			t.Errorf("Recip(%d) = %v, want %v", dmax, r.Float(), want)
		}
	}
}

func TestLocalSimMatchesEquationOne(t *testing.T) {
	// Table 1 spot checks: s = 1 - d/(1+dmax).
	cases := []struct {
		d    uint32
		dmax uint16
		want float64
	}{
		{0, 8, 1.0},
		{1, 2, 1 - 1.0/3.0},   // 0.66...
		{4, 36, 1 - 4.0/37.0}, // 0.8918...
		{8, 8, 1 - 8.0/9.0},   // 0.111...
		{18, 36, 1 - 18.0/37.0},
	}
	for _, c := range cases {
		got := LocalSim(c.d, Recip(c.dmax))
		if math.Abs(got.Float()-c.want) > 3.0/q15Scale {
			t.Errorf("LocalSim(d=%d, dmax=%d) = %v, want %v", c.d, c.dmax, got.Float(), c.want)
		}
	}
}

func TestDist(t *testing.T) {
	if Dist(16, 8) != 8 || Dist(8, 16) != 8 || Dist(5, 5) != 0 {
		t.Error("Dist is not |a-b|")
	}
	if Dist(0, 0xFFFF) != 0xFFFF {
		t.Error("Dist full range")
	}
}

func TestDivQ15AgainstMulRecip(t *testing.T) {
	// The reciprocal-multiply must track the true division within a
	// couple of LSBs across the whole operating range.
	for dmax := uint16(1); dmax < 400; dmax += 7 {
		r := Recip(dmax)
		for d := uint32(0); d <= uint32(dmax); d += 3 {
			byMul := MulDistRecip(d, r)
			byDiv := DivQ15(d, uint32(dmax)+1)
			diff := int32(byMul) - int32(byDiv)
			if diff < 0 {
				diff = -diff
			}
			// The stored reciprocal carries up to 0.5 ulp of UQ16
			// error; after multiplying by d that is d/4 Q15 LSBs.
			// This bounded drift is the accuracy price of the
			// paper's divider-free datapath.
			if diff > int32(d)/4+2 {
				t.Fatalf("dmax=%d d=%d: mul=%d div=%d", dmax, d, byMul, byDiv)
			}
		}
	}
}

func TestEqualWeights(t *testing.T) {
	for n := 1; n <= 12; n++ {
		w := EqualWeights(n)
		if len(w) != n {
			t.Fatalf("len = %d", len(w))
		}
		var sum int32
		for _, x := range w {
			sum += int32(x)
		}
		if sum != int32(q15Scale) && !(n == 1 && Q15(sum) == OneQ15) {
			t.Errorf("n=%d: weights sum to %d, want %d", n, sum, q15Scale)
		}
	}
	if EqualWeights(0) != nil {
		t.Error("EqualWeights(0) should be nil")
	}
}

// Property: LocalSim is monotonically non-increasing in d.
func TestLocalSimMonotone(t *testing.T) {
	f := func(dmax uint16, a, b uint16) bool {
		if dmax == 0 {
			dmax = 1
		}
		da, db := uint32(a)%uint32(dmax+1), uint32(b)%uint32(dmax+1)
		if da > db {
			da, db = db, da
		}
		r := Recip(dmax)
		return LocalSim(da, r) >= LocalSim(db, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AddSat is commutative and bounded.
func TestAddSatProperties(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Q15(a), Q15(b)
		if x < 0 {
			x = 0
		}
		if y < 0 {
			y = 0
		}
		s := AddSat(x, y)
		return s == AddSat(y, x) && s >= 0 && s <= OneQ15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul result never exceeds either operand (both in [0,1)).
func TestMulBounded(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Q15(a), Q15(b)
		if x < 0 {
			x = -x
		}
		if y < 0 {
			y = -y
		}
		p := Mul(x, y)
		return p <= x && p <= y && p >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedAcc(t *testing.T) {
	// acc += w*s, the eq. (2) inner step. Half weight of a full
	// similarity adds ~0.5.
	acc := WeightedAcc(0, FromFloat(0.5), OneQ15)
	if math.Abs(acc.Float()-0.5) > 2.0/q15Scale {
		t.Errorf("acc = %v", acc.Float())
	}
	// Saturation at 1.0.
	acc = WeightedAcc(OneQ15, OneQ15, OneQ15)
	if acc != OneQ15 {
		t.Error("WeightedAcc must saturate")
	}
}

func TestWeightsQ15(t *testing.T) {
	if WeightsQ15(nil) != nil {
		t.Error("empty weights should be nil")
	}
	// Uniform vector routes through EqualWeights: exact Q15 sum.
	w := WeightsQ15([]float64{0.25, 0.25, 0.25, 0.25})
	var sum int32
	for _, x := range w {
		sum += int32(x)
	}
	if sum != q15Scale {
		t.Errorf("uniform weights sum to %d, want %d", sum, q15Scale)
	}
	// Mixed vector converts individually.
	m := WeightsQ15([]float64{0.75, 0.25})
	if math.Abs(m[0].Float()-0.75) > 1.0/q15Scale || math.Abs(m[1].Float()-0.25) > 1.0/q15Scale {
		t.Errorf("mixed weights = %v, %v", m[0].Float(), m[1].Float())
	}
}

func TestDivQ15Edges(t *testing.T) {
	if DivQ15(5, 0) != OneQ15 {
		t.Error("division by zero must saturate to one")
	}
	if DivQ15(100, 10) != OneQ15 {
		t.Error("quotient above one must saturate")
	}
	if DivQ15(0, 7) != 0 {
		t.Error("zero numerator")
	}
}

func TestRecipSmallDen(t *testing.T) {
	// dmax = 0 → den = 1 → reciprocal saturates just below 1.0.
	if Recip(0) != 0xFFFF {
		t.Errorf("Recip(0) = %#x", Recip(0))
	}
}

func TestMulDistRecipSaturates(t *testing.T) {
	// A huge distance against a near-one reciprocal overflows Q15 and
	// must clamp.
	if MulDistRecip(1<<17, 0xFFFF) != OneQ15 {
		t.Error("MulDistRecip must saturate at one")
	}
}
