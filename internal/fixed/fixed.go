// Package fixed implements the 16-bit fixed-point arithmetic used by the
// hardware retrieval unit described in the paper (§4.2: "The processing
// bitwidth of all attribute values was defined at 16 bit").
//
// Two formats appear in the datapath:
//
//   - Q15: signed 1.15 fixed point in [-1, 1). Similarity values live in
//     [0, 1], so the usable range here is [0, 1). The value 1.0 is
//     represented saturated as MaxQ15 = 0x7FFF (error < 2^-15).
//   - UQ16: unsigned 0.16 fixed point in [0, 1). Used for the pre-computed
//     reciprocal (1+dmax)^-1 stored in the attribute-supplemental list
//     (fig. 4 right, "Max Range -1" entries). Storing the reciprocal lets
//     the hardware replace a division by a multiplication (§4.1).
//
// All operations saturate rather than wrap: the datapath computes
// similarities, which are mathematically confined to [0, 1], so wrapping
// would only ever convert a rounding artifact into a gross error.
package fixed

// Q15 is a signed 16-bit fixed-point number with 15 fractional bits.
type Q15 int16

// UQ16 is an unsigned 16-bit fixed-point number with 16 fractional bits.
type UQ16 uint16

const (
	// OneQ15 is the largest representable Q15 value, used as the
	// saturated representation of 1.0.
	OneQ15 Q15 = 0x7FFF
	// ZeroQ15 is the Q15 representation of 0.
	ZeroQ15 Q15 = 0
	// q15Scale is the scale factor 2^15.
	q15Scale = 1 << 15
	// uq16Scale is the scale factor 2^16.
	uq16Scale = 1 << 16
)

// FromFloat converts a float64 in [0, 1] to Q15, saturating outside that
// range and rounding to nearest.
func FromFloat(f float64) Q15 {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return OneQ15
	}
	v := int32(f*q15Scale + 0.5)
	if v > int32(OneQ15) {
		v = int32(OneQ15)
	}
	return Q15(v)
}

// Float returns the float64 value of q.
func (q Q15) Float() float64 { return float64(q) / q15Scale }

// UQ16FromFloat converts a float64 in [0, 1) to UQ16, saturating outside
// that range and rounding to nearest.
func UQ16FromFloat(f float64) UQ16 {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return 0xFFFF
	}
	v := uint32(f*uq16Scale + 0.5)
	if v > 0xFFFF {
		v = 0xFFFF
	}
	return UQ16(v)
}

// Float returns the float64 value of u.
func (u UQ16) Float() float64 { return float64(u) / uq16Scale }

// AddSat returns a+b with saturation at [0, OneQ15]. Similarity
// accumulation never needs negative values, so the lower clamp is 0.
func AddSat(a, b Q15) Q15 {
	s := int32(a) + int32(b)
	if s > int32(OneQ15) {
		return OneQ15
	}
	if s < 0 {
		return 0
	}
	return Q15(s)
}

// SubSat returns a-b saturated to [0, OneQ15].
func SubSat(a, b Q15) Q15 {
	s := int32(a) - int32(b)
	if s < 0 {
		return 0
	}
	if s > int32(OneQ15) {
		return OneQ15
	}
	return Q15(s)
}

// Mul returns the Q15 product a*b (both in [0,1)), truncating toward zero
// exactly as the 18x18 hardware multiplier followed by a 15-bit right
// shift would.
func Mul(a, b Q15) Q15 {
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	p := int32(a) * int32(b)
	return Q15(p >> 15)
}

// MulDistRecip computes d * recip where d is an unsigned integer distance
// (Manhattan distance between two 16-bit attribute values, so d fits in
// 17 bits) and recip is the UQ16 reciprocal of (1+dmax). The result is the
// Q15 quotient d/(1+dmax), saturated to [0, OneQ15]. This models the
// MULT18X18 + shift in the fig. 7 datapath.
func MulDistRecip(d uint32, recip UQ16) Q15 {
	// d * recip has 16 fractional bits; shift by 1 to land on 15.
	p := uint64(d) * uint64(recip) // up to 33 bits
	q := p >> 1                    // Q15
	if q > uint64(OneQ15) {
		return OneQ15
	}
	return Q15(q)
}

// Recip returns the UQ16 representation of 1/(1+dmax), the constant stored
// per attribute type in the supplemental list. dmax is the design-global
// maximum distance for the attribute type. Rounds to nearest.
func Recip(dmax uint16) UQ16 {
	den := uint32(dmax) + 1
	// (2^16 + den/2) / den, saturated below 2^16.
	v := (uint32(uq16Scale) + den/2) / den
	if v > 0xFFFF {
		v = 0xFFFF
	}
	return UQ16(v)
}

// LocalSim computes the local similarity s = 1 - d/(1+dmax) of eq. (1) in
// 16-bit fixed point, exactly as the hardware does: one multiply by the
// stored reciprocal, one saturated subtract from 1.
func LocalSim(d uint32, recip UQ16) Q15 {
	return SubSat(OneQ15, MulDistRecip(d, recip))
}

// WeightedAcc accumulates w*s into acc with saturation, the inner step of
// the eq. (2) amalgamation S = sum w_i * s_i as the datapath performs it.
func WeightedAcc(acc, w, s Q15) Q15 {
	return AddSat(acc, Mul(w, s))
}

// Dist returns the Manhattan distance |a-b| of two 16-bit attribute
// values, as computed by the ABS(X) block in fig. 7.
func Dist(a, b uint16) uint32 {
	if a > b {
		return uint32(a - b)
	}
	return uint32(b - a)
}

// DivQ15 returns the true Q15 quotient num/den for den > 0, saturated to
// [0, OneQ15]. It exists only as the baseline for the reciprocal-multiply
// ablation (DESIGN.md §5): the paper's hardware avoids exactly this
// divider.
func DivQ15(num, den uint32) Q15 {
	if den == 0 {
		return OneQ15
	}
	q := (uint64(num) << 15) / uint64(den)
	if q > uint64(OneQ15) {
		return OneQ15
	}
	return Q15(q)
}

// WeightsQ15 converts normalized float weights to Q15 for the datapath.
// Uniform weight vectors (the paper's w_i = 1/n case) are routed through
// EqualWeights so they sum to exactly 1.0 in Q15, as a design-time list
// generator would emit them; mixed vectors are rounded individually.
func WeightsQ15(ws []float64) []Q15 {
	if len(ws) == 0 {
		return nil
	}
	equal := true
	for _, w := range ws {
		if w != ws[0] {
			equal = false
			break
		}
	}
	if equal {
		return EqualWeights(len(ws))
	}
	out := make([]Q15, len(ws))
	for i, w := range ws {
		out[i] = FromFloat(w)
	}
	return out
}

// EqualWeights returns n Q15 weights summing (as nearly as representable)
// to 1, i.e. the w_i = 1/n of the paper's example. The remainder from
// rounding is added to the first weight so that the sum saturates to
// OneQ15 exactly.
func EqualWeights(n int) []Q15 {
	if n <= 0 {
		return nil
	}
	w := make([]Q15, n)
	base := int32(q15Scale) / int32(n)
	rem := int32(q15Scale) - base*int32(n)
	for i := range w {
		w[i] = Q15(base)
	}
	w[0] = Q15(int32(w[0]) + rem)
	if n == 1 {
		w[0] = OneQ15
	}
	return w
}
