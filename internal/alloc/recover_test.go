package alloc

import (
	"errors"
	"math"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/rtsys"
)

func TestRecoverDegradesAcrossTargetClasses(t *testing.T) {
	m, sys := platform(t, Options{})
	d, err := m.Request("mp3", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Device != "dsp0" {
		t.Fatalf("decision = %+v, want dsp0", d)
	}
	// The DSP dies; its task is stranded and auto-requeued.
	stranded, err := sys.FailDevice("dsp0")
	if err != nil {
		t.Fatal(err)
	}
	if len(stranded) != 1 || stranded[0].ID != d.Task.ID {
		t.Fatalf("stranded = %+v", stranded)
	}

	recs := m.RecoverFromFaults()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %d", len(recs))
	}
	rec := recs[0]
	if rec.Task != d.Task.ID || rec.Decision == nil || rec.Report != nil {
		t.Fatalf("recovery = %+v", rec)
	}
	// The whole DSP class is excluded (its only device failed), so
	// degrade-and-retry falls down the N-best list to the FPGA variant.
	if rec.Decision.Impl != 1 || rec.Decision.Target != casebase.TargetFPGA {
		t.Errorf("recovered onto %+v, want FPGA impl 1", rec.Decision)
	}
	if math.Abs(rec.Decision.Similarity-0.85) > 0.01 {
		t.Errorf("recovered similarity = %v", rec.Decision.Similarity)
	}
	// 0.96 → 0.85 is a degradation, and the report names what was lost.
	deg := rec.Decision.Degraded
	if deg == nil {
		t.Fatal("degradation not reported")
	}
	if deg.FromImpl != 2 || deg.ToImpl != 1 || deg.ToSim >= deg.FromSim {
		t.Errorf("degradation = %+v", deg)
	}
	if len(deg.LostAttrs) == 0 {
		t.Error("degradation must name the lost QoS attributes")
	}
	if d.Task.State != rtsys.Configuring {
		t.Errorf("task state = %v", d.Task.State)
	}
	st := m.Stats()
	if st.Recovered != 1 || st.Degraded != 1 || st.FaultRejected != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Idempotent: a second sweep finds nothing stranded.
	if again := m.RecoverFromFaults(); len(again) != 0 {
		t.Errorf("second sweep = %+v", again)
	}
}

func TestRecoverRejectsWithDegradationReport(t *testing.T) {
	m, sys := platform(t, Options{})
	d, err := m.Request("mp3", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the whole platform: nothing can host any variant.
	for _, name := range []device.ID{"dsp0", "fpga0", "gpp0"} {
		if _, err := sys.FailDevice(name); err != nil {
			t.Fatal(err)
		}
	}
	recs := m.RecoverFromFaults()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %d", len(recs))
	}
	rec := recs[0]
	if rec.Decision != nil || rec.Report == nil {
		t.Fatalf("recovery = %+v", rec)
	}
	rep := rec.Report
	if rep.Task != d.Task.ID || rep.App != "mp3" {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.Excluded) != 3 {
		t.Errorf("excluded = %v, want all three target classes", rep.Excluded)
	}
	// Every candidate's target is excluded, so none was even tried and
	// every requested attribute is lost.
	if len(rep.Tried) != 0 {
		t.Errorf("tried = %+v", rep.Tried)
	}
	if len(rep.LostAttrs) != len(casebase.PaperRequest().Constraints) {
		t.Errorf("lost attrs = %v", rep.LostAttrs)
	}
	// The report is a structured error unwrapping to the sentinel.
	if !errors.Is(rep, ErrNoViableVariant) {
		t.Error("report must wrap ErrNoViableVariant")
	}
	if rep.Error() == "" {
		t.Error("report must render")
	}
	// The rejected task is finalized, not dropped.
	if d.Task.State != rtsys.Done {
		t.Errorf("rejected task state = %v", d.Task.State)
	}
	if m.Stats().FaultRejected != 1 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

func TestRecoverRequeuesExhaustedTask(t *testing.T) {
	m, sys := platform(t, Options{})
	sys.RetryLimit = 0 // first configuration error fails the placement
	d, err := m.Request("mp3", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ConfigError(d.Task); err != nil {
		t.Fatal(err)
	}
	if d.Task.State != rtsys.Failed {
		t.Fatalf("task state = %v", d.Task.State)
	}
	recs := m.RecoverFromFaults()
	if len(recs) != 1 || recs[0].Decision == nil {
		t.Fatalf("recoveries = %+v", recs)
	}
	// The platform is intact, so the task comes back on the same variant
	// with no degradation.
	if recs[0].Decision.Impl != d.Impl || recs[0].Decision.Degraded != nil {
		t.Errorf("recovery = %+v", recs[0].Decision)
	}
	if d.Task.State != rtsys.Configuring {
		t.Errorf("task state = %v", d.Task.State)
	}
}

func TestErrNoFeasibleUnwrapsSentinel(t *testing.T) {
	err := error(&ErrNoFeasible{})
	if !errors.Is(err, ErrNoViableVariant) {
		t.Error("ErrNoFeasible must wrap ErrNoViableVariant")
	}
}
