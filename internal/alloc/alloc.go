// Package alloc implements the paper's Function-Allocation-Management
// layer (fig. 1): the component between the Application-API and the
// HW-Layer API that, for each QoS-constrained function call, retrieves
// the best-matching implementation variants from the case base, checks
// their feasibility against the current system load, places the chosen
// variant on a device (possibly preempting lower-priority work), offers
// alternatives when the best match is not feasible, and hands out bypass
// tokens so repeated calls skip the retrieval (§2–§3).
package alloc

import (
	"errors"
	"fmt"

	"qosalloc/internal/alloc/policy"
	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/obs"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtsys"
)

// ErrNoViableVariant is the sentinel wrapped by both ErrNoFeasible and
// DegradationReport: retrieval produced candidates but none could be
// placed anywhere, even after falling down the N-best list.
var ErrNoViableVariant = errors.New("alloc: no viable variant")

// Options tune the manager's policy.
type Options struct {
	// Threshold rejects retrieval results below this global
	// similarity ("it's conceivable to reject all results below a
	// given threshold similarity", §3).
	Threshold float64
	// NBest bounds how many retrieval candidates are checked for
	// feasibility, the §5 n-most-similar extension. Zero means 3.
	NBest int
	// AllowPreemption permits evicting strictly lower-priority tasks
	// when the best match has no free capacity.
	AllowPreemption bool
	// UseBypassTokens enables the repeated-call shortcut.
	UseBypassTokens bool
	// PowerWeight trades QoS similarity against power (the §1
	// "energy/power-efficiency" goal): candidates are ranked by
	// S - PowerWeight·(PowerMW/1000) instead of S alone. Zero keeps
	// the paper's pure-similarity ranking.
	PowerWeight float64
}

// Decision reports a successful allocation.
type Decision struct {
	Task       *rtsys.Task
	Impl       casebase.ImplID
	Target     casebase.Target
	Device     device.ID
	Similarity float64
	ReadyAt    device.Micros
	ViaToken   bool
	Preempted  []rtsys.TaskID
	// Degraded is set when this decision recovered a fault-stranded
	// task onto a worse-matching variant than it originally held.
	Degraded *Degradation
}

// Degradation names the QoS lost when a task was recovered onto a
// lower-ranked variant — the application sees *what* it gave up, not
// just that something changed.
type Degradation struct {
	FromImpl casebase.ImplID
	ToImpl   casebase.ImplID
	FromSim  float64
	ToSim    float64
	// LostAttrs are the requested attributes whose local similarity
	// dropped in the substitute variant.
	LostAttrs []attr.ID
}

// ErrNoFeasible is returned when retrieval produced matches but none
// could be placed; Alternatives carries the scored candidates so the
// calling application can decide ("an alternative implementation can be
// offered to the calling application which has to decide on it", §2).
type ErrNoFeasible struct {
	Alternatives []retrieval.Result
}

func (e *ErrNoFeasible) Error() string {
	return fmt.Sprintf("alloc: no feasible implementation (%d matching variants, all without capacity)",
		len(e.Alternatives))
}

// Unwrap makes errors.Is(err, ErrNoViableVariant) work.
func (e *ErrNoFeasible) Unwrap() error { return ErrNoViableVariant }

// DegradationReport is the structured rejection of the degrade-and-retry
// policy: a fault stranded the task, retrieval was re-run excluding the
// failed targets, the whole similarity-ranked N-best list was walked, and
// nothing fit. It names the QoS attributes the application lost so the
// caller can renegotiate rather than guess.
type DegradationReport struct {
	App  string
	Task rtsys.TaskID
	Req  casebase.Request
	// Excluded are target classes with no device able to accept work.
	Excluded []casebase.Target
	// Tried are the candidates examined, best-first.
	Tried []retrieval.Result
	// LostAttrs are the requested attributes that could not be honored
	// by any placeable variant.
	LostAttrs []attr.ID
}

func (r *DegradationReport) Error() string {
	return fmt.Sprintf("alloc: task %d (%s) rejected after degrade-and-retry: %d candidates tried, %d targets excluded, %d QoS attributes lost",
		r.Task, r.App, len(r.Tried), len(r.Excluded), len(r.LostAttrs))
}

// Unwrap makes errors.Is(err, ErrNoViableVariant) work.
func (r *DegradationReport) Unwrap() error { return ErrNoViableVariant }

// Recovery is the outcome of degrade-and-retry for one fault-stranded
// task: exactly one of Decision (re-placed, possibly degraded) or Report
// (rejected with the structured degradation report) is set.
type Recovery struct {
	Task     rtsys.TaskID
	App      string
	Decision *Decision
	Report   *DegradationReport
}

// Stats counts manager activity.
type Stats struct {
	Requests    int
	TokenHits   int
	Retrievals  int
	Placed      int
	Preemptions int
	Rejected    int // threshold rejections (whole requests)
	Infeasible  int

	// Degrade-and-retry counters.
	Recovered     int // fault-stranded tasks re-placed
	Degraded      int // …of which on a worse-matching variant
	FaultRejected int // stranded tasks rejected with a DegradationReport
}

// origin remembers, per live task, the request and variant the manager
// granted — the input to degrade-and-retry when a fault strands it.
type origin struct {
	app  string
	req  casebase.Request
	impl casebase.ImplID
	sim  float64
}

// Manager is the function-allocation manager: the thin composition of
// the pure policy package (which candidate, which victim, what was
// lost) with the Mechanism execution layer (resolve records, snapshot
// devices, place and preempt). All bookkeeping that spans both —
// counters, metrics, bypass tokens, task origins — lives here.
type Manager struct {
	mech   *Mechanism
	engine *retrieval.Engine
	// locEngine keeps per-attribute breakdowns (off the hot path) for
	// degradation accounting: which QoS attributes got worse.
	locEngine *retrieval.Engine
	sys       *rtsys.System
	tokens    *retrieval.TokenCache
	opt       Options
	stats     Stats
	met       *metrics
	retMet    *retrieval.Metrics // survives UpdateCaseBase engine rebuilds
	origins   map[rtsys.TaskID]origin
}

// New builds a manager over a case base and run-time system.
func New(cb *casebase.CaseBase, sys *rtsys.System, opt Options) *Manager {
	if opt.NBest <= 0 {
		opt.NBest = 3
	}
	return &Manager{
		mech:      NewMechanism(cb, sys),
		engine:    retrieval.NewEngine(cb, retrieval.Options{Threshold: opt.Threshold}),
		locEngine: retrieval.NewEngine(cb, retrieval.Options{KeepLocals: true}),
		sys:       sys,
		tokens:    retrieval.NewTokenCache(),
		opt:       opt,
		met:       newMetrics(nil),
		origins:   make(map[rtsys.TaskID]origin),
	}
}

// Instrument registers the manager's metric set on reg and threads the
// retrieval bundle through both engines. The run-time system and devices
// have their own Instrument hooks; call them separately so each layer's
// metrics can go to the same or different registries.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.met = newMetrics(reg)
	m.retMet = retrieval.NewMetrics(reg)
	m.engine.Instrument(m.retMet)
	m.locEngine.Instrument(m.retMet)
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// System returns the underlying run-time system.
func (m *Manager) System() *rtsys.System { return m.sys }

// Engine returns the retrieval engine (for inspection in reports).
func (m *Manager) Engine() *retrieval.Engine { return m.engine }

// TokenCache returns the bypass-token cache.
func (m *Manager) TokenCache() *retrieval.TokenCache { return m.tokens }

// Request allocates an implementation for a QoS function request on
// behalf of app with the given base priority. On success the chosen
// variant is placed and a task handle returned; the application still
// has to advance the run-time clock past Decision.ReadyAt before the
// function is usable.
func (m *Manager) Request(app string, req casebase.Request, basePrio int) (*Decision, error) {
	m.stats.Requests++
	m.met.requests.Inc()

	// Bypass-token shortcut: a repeated call with the same signature
	// skips retrieval; "only an availability check on the function and
	// its allocated resources has to be done" (§3).
	if m.opt.UseBypassTokens {
		if tok, ok := m.tokens.Lookup(req); ok {
			if d, err := m.tryPlace(app, req, tok.Impl, tok.Similarity, basePrio); err == nil {
				m.stats.TokenHits++
				m.met.tokenHits.Inc()
				m.met.event(int64(m.sys.Now()), "token-hit", "app=%s task=%d impl=%d dev=%s", app, d.Task.ID, d.Impl, d.Device)
				d.ViaToken = true
				return d, nil
			}
			// Token's variant is momentarily infeasible; fall
			// through to full retrieval.
		}
	}

	m.stats.Retrievals++
	m.met.retrievals.Inc()
	candidates, err := m.engine.RetrieveN(req, m.opt.NBest)
	if err != nil {
		var nm *retrieval.ErrNoMatch
		if errors.As(err, &nm) {
			m.stats.Rejected++
			m.met.rejected.Inc()
			m.met.event(int64(m.sys.Now()), "threshold-reject", "app=%s type=%d best=%.3f", app, req.Type, nm.Best)
		}
		return nil, err
	}
	return m.placeCandidates(app, req, candidates, basePrio)
}

// PlaceCandidates is the placement half of Request for callers that run
// retrieval on their own engines — the serve layer retrieves on sharded,
// deduplicated engines and feeds the candidate lists here. The list must
// be similarity-ranked best first (the order RetrieveN returns); the
// manager applies its power ranking, walks feasibility, optionally
// preempts, and stores a bypass token on success. Counted as a request
// in Stats; the caller owns the slice (it may be re-ordered in place).
func (m *Manager) PlaceCandidates(app string, req casebase.Request, candidates []retrieval.Result, basePrio int) (*Decision, error) {
	m.stats.Requests++
	m.met.requests.Inc()
	return m.placeCandidates(app, req, candidates, basePrio)
}

// placeCandidates walks a similarity-ranked candidate list: feasibility
// check best first, then preemption, then the structured infeasibility
// error carrying the alternatives.
func (m *Manager) placeCandidates(app string, req casebase.Request, candidates []retrieval.Result, basePrio int) (*Decision, error) {
	m.rankForPower(req.Type, candidates)

	// Feasibility check, best candidate first.
	for depth, cand := range candidates {
		d, err := m.tryPlace(app, req, cand.Impl, cand.Similarity, basePrio)
		if err == nil {
			m.met.nbestDepth.Observe(int64(depth + 1))
			m.met.event(int64(m.sys.Now()), "place", "app=%s task=%d impl=%d dev=%s depth=%d", app, d.Task.ID, d.Impl, d.Device, depth+1)
			m.tokens.Store(req, retrieval.Token{
				Type: req.Type, Impl: cand.Impl, Similarity: cand.Similarity,
			})
			return d, nil
		}
	}

	// Nothing placeable without preemption; try evicting strictly
	// lower-priority work for the best candidate.
	if m.opt.AllowPreemption {
		if d, err := m.tryPreemptivePlace(app, req, candidates, basePrio); err == nil {
			return d, nil
		}
	}

	m.stats.Infeasible++
	m.met.infeasible.Inc()
	m.met.event(int64(m.sys.Now()), "infeasible", "app=%s type=%d candidates=%d", app, req.Type, len(candidates))
	return nil, &ErrNoFeasible{Alternatives: candidates}
}

// rankForPower re-orders the candidate list by the power-discounted
// score S - PowerWeight·(PowerMW/1000): the mechanism resolves each
// candidate's power figure, policy.PowerOrder decides the order, and
// the permutation is applied in place. A no-op when PowerWeight is 0.
func (m *Manager) rankForPower(ty casebase.TypeID, candidates []retrieval.Result) {
	if m.opt.PowerWeight == 0 {
		return
	}
	sims := make([]float64, len(candidates))
	power := make([]int, len(candidates))
	for i, r := range candidates {
		sims[i] = r.Similarity
		power[i] = m.mech.PowerMW(ty, r.Impl)
	}
	order := policy.PowerOrder(sims, power, m.opt.PowerWeight)
	reordered := make([]retrieval.Result, len(candidates))
	for i, j := range order {
		reordered[i] = candidates[j]
	}
	copy(candidates, reordered)
}

// implOf resolves an implementation record via the mechanism layer.
func (m *Manager) implOf(ty casebase.TypeID, id casebase.ImplID) (*casebase.Implementation, error) {
	return m.mech.ImplOf(ty, id)
}

// tryPlace attempts to place an implementation on any device of its
// target class with free capacity: the mechanism executes, the manager
// keeps the books (stats, origins, the Decision).
func (m *Manager) tryPlace(app string, req casebase.Request, id casebase.ImplID, sim float64, basePrio int) (*Decision, error) {
	im, err := m.implOf(req.Type, id)
	if err != nil {
		return nil, err
	}
	task, dev, err := m.mech.TryPlace(app, req.Type, im, basePrio)
	if err != nil {
		return nil, err
	}
	m.stats.Placed++
	m.met.placed.Inc()
	m.origins[task.ID] = origin{app: app, req: req, impl: id, sim: sim}
	return &Decision{
		Task: task, Impl: id, Target: im.Target, Device: dev.Name(),
		Similarity: sim, ReadyAt: task.ReadyAt,
	}, nil
}

// tryPreemptivePlace evicts the lowest-priority strictly-lower-priority
// victim that frees enough capacity for the best-ranked candidate.
func (m *Manager) tryPreemptivePlace(app string, req casebase.Request, candidates []retrieval.Result, basePrio int) (*Decision, error) {
	for _, cand := range candidates {
		im, err := m.implOf(req.Type, cand.Impl)
		if err != nil {
			continue
		}
		for _, dev := range m.sys.DevicesByKind(im.Target) {
			victim := m.lowestVictim(dev, basePrio)
			if victim == nil {
				continue
			}
			if err := m.sys.Preempt(victim); err != nil {
				continue
			}
			m.stats.Preemptions++
			m.met.preemptions.Inc()
			m.met.event(int64(m.sys.Now()), "preempt", "victim=%d dev=%s for app=%s", victim.ID, dev.Name(), app)
			if !dev.CanPlace(im.Foot) {
				// Even the freed capacity is not enough; the
				// victim stays preempted and will re-bid with
				// aged priority via ReplacePending.
				continue
			}
			d, err := m.tryPlace(app, req, cand.Impl, cand.Similarity, basePrio)
			if err != nil {
				continue
			}
			d.Preempted = append(d.Preempted, victim.ID)
			m.tokens.Store(req, retrieval.Token{
				Type: req.Type, Impl: cand.Impl, Similarity: cand.Similarity,
			})
			return d, nil
		}
	}
	return nil, fmt.Errorf("alloc: preemption found no viable victim")
}

// lowestVictim returns the running/configuring task with the lowest
// effective priority on dev, provided it is strictly below prio: the
// mechanism snapshots the occupants, policy.LowestVictim chooses.
func (m *Manager) lowestVictim(dev device.Device, prio int) *rtsys.Task {
	occ, tasks := m.mech.Occupants(dev)
	i, ok := policy.LowestVictim(occ, prio)
	if !ok {
		return nil
	}
	return tasks[i]
}

// Release completes a task and invalidates nothing: bypass tokens stay
// valid because the variant choice is still correct for the signature.
func (m *Manager) Release(id rtsys.TaskID) error {
	t, ok := m.sys.Task(id)
	if !ok {
		return fmt.Errorf("alloc: unknown task %d", id)
	}
	if err := m.sys.Complete(t); err != nil {
		return fmt.Errorf("alloc: release task %d: %w", id, err)
	}
	delete(m.origins, id)
	return nil
}

// ReplacePending sweeps preempted tasks in descending aged priority and
// tries to re-place them on their previously chosen implementation —
// the recovery half of the preemption story. It returns how many tasks
// came back.
func (m *Manager) ReplacePending() int {
	placed := 0
	for {
		best := m.bestWaiting()
		if best == nil {
			return placed
		}
		im, err := m.implOf(best.Type, best.Impl)
		if err != nil {
			return placed
		}
		if _, ok := m.mech.PlaceExisting(best, im); !ok {
			return placed
		}
		placed++
	}
}

// bestWaiting returns the preempted task with the highest aged priority.
func (m *Manager) bestWaiting() *rtsys.Task {
	occ, tasks := m.mech.Waiting()
	i, ok := policy.BestWaiting(occ)
	if !ok {
		return nil
	}
	return tasks[i]
}

// InvalidateCaseBase drops all bypass tokens for a function type, the
// hook a dynamic case-base update (the paper's future work) must call.
func (m *Manager) InvalidateCaseBase(ty casebase.TypeID) int {
	return m.tokens.InvalidateType(ty)
}

// UpdateCaseBase swaps in a revised case base — the §5 dynamic update,
// produced by the learn package's Rebuild. The retrieval engine is
// rebuilt over the new tree and every bypass token is invalidated, since
// pinned selections may no longer be the best match. Tasks already
// placed keep running; only future requests see the new tree.
func (m *Manager) UpdateCaseBase(cb *casebase.CaseBase) {
	m.mech = NewMechanism(cb, m.sys)
	m.engine = retrieval.NewEngine(cb, retrieval.Options{Threshold: m.opt.Threshold})
	m.locEngine = retrieval.NewEngine(cb, retrieval.Options{KeepLocals: true})
	if m.retMet != nil {
		m.engine.Instrument(m.retMet)
		m.locEngine.Instrument(m.retMet)
	}
	m.tokens.InvalidateAll()
}

// --- Degrade-and-retry recovery ---------------------------------------

// RecoverFromFaults sweeps every fault-stranded task — Failed (retries
// exhausted) or auto-re-queued Pending with a fault count — and runs the
// degrade-and-retry policy on each: re-run CBR retrieval excluding
// targets with no surviving device, walk the similarity-ranked N-best
// list until a variant fits, and otherwise reject the task with a
// structured DegradationReport. Every stranded task gets exactly one
// Recovery; none is silently dropped.
func (m *Manager) RecoverFromFaults() []Recovery {
	var out []Recovery
	for _, t := range m.sys.Tasks() {
		switch {
		case t.State == rtsys.Failed:
			// Exhausted its configuration retries; give it a fresh
			// shot at a different variant/device.
			if err := m.sys.Requeue(t); err != nil {
				continue
			}
		case t.State == rtsys.Pending && t.Faults > 0:
			// Auto-re-queued when its device failed.
		default:
			continue
		}
		out = append(out, m.recoverTask(t))
	}
	return out
}

// recoverTask runs degrade-and-retry for one re-queued task.
func (m *Manager) recoverTask(t *rtsys.Task) Recovery {
	rec := Recovery{Task: t.ID, App: t.App}
	org, known := m.origins[t.ID]
	if !known {
		// The task was placed around the manager; all we know is its
		// type. Recover with an unconstrained request.
		org = origin{app: t.App, req: casebase.NewRequest(t.Type), impl: t.Impl}
	}
	excluded := m.excludedTargets()
	candidates, err := m.locEngine.RetrieveN(org.req, m.opt.NBest)
	if err != nil {
		rec.Report = m.reject(t, org, excluded, nil)
		return rec
	}
	m.rankForPower(org.req.Type, candidates)

	var tried []retrieval.Result
	for _, cand := range candidates {
		im, err := m.implOf(org.req.Type, cand.Impl)
		if err != nil || policy.TargetExcluded(excluded, im.Target) {
			continue
		}
		tried = append(tried, cand)
		if dev, ok := m.mech.PlaceExisting(t, im); ok {
			m.stats.Recovered++
			m.met.recovered.Inc()
			m.met.nbestDepth.Observe(int64(len(tried)))
			m.met.event(int64(m.sys.Now()), "recover", "task=%d impl=%d dev=%s", t.ID, cand.Impl, dev.Name())
			d := &Decision{
				Task: t, Impl: cand.Impl, Target: im.Target, Device: dev.Name(),
				Similarity: cand.Similarity, ReadyAt: t.ReadyAt,
			}
			if known && cand.Impl != org.impl {
				lost := m.lostAttrs(org.req, org.impl, cand.Impl)
				if policy.IsDegradation(org.sim, cand.Similarity, lost) {
					m.stats.Degraded++
					m.met.degraded.Inc()
					m.met.event(int64(m.sys.Now()), "degrade", "task=%d impl %d->%d sim %.3f->%.3f", t.ID, org.impl, cand.Impl, org.sim, cand.Similarity)
					d.Degraded = &Degradation{
						FromImpl: org.impl, ToImpl: cand.Impl,
						FromSim: org.sim, ToSim: cand.Similarity,
						LostAttrs: lost,
					}
				}
			}
			m.origins[t.ID] = origin{app: org.app, req: org.req, impl: cand.Impl, sim: cand.Similarity}
			rec.Decision = d
			return rec
		}
	}
	rec.Report = m.reject(t, org, excluded, tried)
	return rec
}

// reject finalizes a stranded task the policy could not re-place: the
// task is completed (the application cannot call the function, §3) and a
// structured report names what was lost.
func (m *Manager) reject(t *rtsys.Task, org origin, excluded []casebase.Target, tried []retrieval.Result) *DegradationReport {
	m.stats.FaultRejected++
	m.met.faultRejected.Inc()
	m.met.event(int64(m.sys.Now()), "fault-reject", "task=%d app=%s tried=%d excluded=%d", t.ID, org.app, len(tried), len(excluded))
	rep := &DegradationReport{
		App: org.app, Task: t.ID, Req: org.req,
		Excluded: excluded, Tried: tried,
		LostAttrs: policy.RejectedAttrs(org.req, tried),
	}
	_ = m.sys.Complete(t)
	delete(m.origins, t.ID)
	return rep
}

// excludedTargets returns the target classes with no device able to
// accept new work — the "failed target" the re-run retrieval excludes.
func (m *Manager) excludedTargets() []casebase.Target {
	seen, alive := m.mech.TargetHealth()
	return policy.ExcludedTargets(seen, alive)
}

// lostAttrs compares the per-attribute similarity of two variants for
// the same request and returns the requested attributes the substitute
// satisfies worse: the locals engine supplies the breakdowns,
// policy.LostAttrs does the comparison.
func (m *Manager) lostAttrs(req casebase.Request, from, to casebase.ImplID) []attr.ID {
	all, err := m.locEngine.RetrieveAll(req)
	if err != nil {
		return nil
	}
	locals := func(id casebase.ImplID) []retrieval.LocalScore {
		for _, r := range all {
			if r.Impl == id {
				return r.Locals
			}
		}
		return nil
	}
	return policy.LostAttrs(locals(from), locals(to))
}
