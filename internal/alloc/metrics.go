package alloc

import (
	"fmt"

	"qosalloc/internal/obs"
)

// metrics is the manager's observability bundle. A dangling bundle
// (built over a nil registry) backs every uninstrumented manager, so
// increment sites never branch; only the trace ring checks enabled, to
// skip the event formatting cost when nobody is reading.
type metrics struct {
	enabled bool

	requests      *obs.Counter
	tokenHits     *obs.Counter
	retrievals    *obs.Counter
	placed        *obs.Counter
	preemptions   *obs.Counter
	rejected      *obs.Counter
	infeasible    *obs.Counter
	recovered     *obs.Counter
	degraded      *obs.Counter
	faultRejected *obs.Counter

	// nbestDepth observes the 1-based position of the candidate that
	// finally placed — how far down the similarity-ranked N-best list
	// the feasibility walk had to fall. Depth 1 means the best match
	// was feasible, the paper's ideal case.
	nbestDepth *obs.Histogram
	trace      *obs.Ring
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		enabled:       reg != nil,
		requests:      reg.Counter("qos_alloc_requests_total", "allocation requests received"),
		tokenHits:     reg.Counter("qos_alloc_token_hits_total", "requests served by a bypass token (retrieval skipped)"),
		retrievals:    reg.Counter("qos_alloc_retrievals_total", "requests that ran full CBR retrieval"),
		placed:        reg.Counter("qos_alloc_placed_total", "successful placements"),
		preemptions:   reg.Counter("qos_alloc_preemptions_total", "victims evicted to make room"),
		rejected:      reg.Counter("qos_alloc_threshold_rejections_total", "requests rejected below the similarity threshold"),
		infeasible:    reg.Counter("qos_alloc_infeasible_total", "requests with matches but no placeable variant"),
		recovered:     reg.Counter("qos_alloc_recovered_total", "fault-stranded tasks re-placed by degrade-and-retry"),
		degraded:      reg.Counter("qos_alloc_degraded_total", "recoveries that landed on a worse-matching variant"),
		faultRejected: reg.Counter("qos_alloc_fault_rejected_total", "stranded tasks rejected with a DegradationReport"),
		nbestDepth: reg.Histogram("qos_alloc_nbest_depth",
			"1-based N-best position of the candidate that placed", obs.DepthBuckets),
		trace: reg.Ring("qos_alloc_trace", "placement-outcome trace (sim micros)", 256),
	}
}

// event appends a trace event at sim time, formatting only when a real
// registry is listening.
func (m *metrics) event(at int64, kind, format string, args ...any) {
	if !m.enabled {
		return
	}
	m.trace.Append(obs.Event{At: at, Kind: kind, Detail: fmt.Sprintf(format, args...)})
}
