package alloc

import (
	"math/rand"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/workload"
)

// TestStressInvariants drives the manager with a randomized request /
// release / advance mix and checks the conservation invariants after
// every step: processor load within [0, capacity], FPGA slot occupancy
// within bounds, and every live placement owned by a live task.
func TestStressInvariants(t *testing.T) {
	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
		N: 300, ConstraintsPer: 4, RepeatFraction: 0.3, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	repo := device.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		t.Fatal(err)
	}
	fpga := device.NewFPGA("fpga0", []device.Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
	dsp := device.NewProcessor("dsp0", casebase.TargetDSP, 1500, 1<<20)
	gpp := device.NewProcessor("gpp0", casebase.TargetGPP, 1500, 1<<20)
	sys := rtsys.NewSystem(repo, fpga, dsp, gpp)
	m := New(cb, sys, Options{NBest: 3, AllowPreemption: true, UseBypassTokens: true})

	check := func(step int) {
		t.Helper()
		for _, p := range []*device.Processor{dsp, gpp} {
			if p.Load() < 0 || p.Load() > p.LoadCapacity {
				t.Fatalf("step %d: %s load %d outside [0, %d]", step, p.Name(), p.Load(), p.LoadCapacity)
			}
		}
		if fpga.FreeSlots() < 0 || fpga.FreeSlots() > fpga.NumSlots() {
			t.Fatalf("step %d: free slots %d outside bounds", step, fpga.FreeSlots())
		}
		for _, dev := range sys.Devices() {
			for _, pl := range dev.Placements() {
				task, ok := sys.Task(rtsys.TaskID(pl.Task))
				if !ok {
					t.Fatalf("step %d: placement for unknown task %d", step, pl.Task)
				}
				if task.State != rtsys.Running && task.State != rtsys.Configuring {
					t.Fatalf("step %d: placed task %d is %v", step, task.ID, task.State)
				}
				if task.Dev != dev.Name() {
					t.Fatalf("step %d: task %d thinks it is on %q, device says %q",
						step, task.ID, task.Dev, dev.Name())
				}
			}
		}
	}

	r := rand.New(rand.NewSource(77))
	var live []rtsys.TaskID
	placed, failed := 0, 0
	for i, req := range reqs {
		_ = sys.Advance(device.Micros(1 + r.Intn(2000)))
		switch {
		case len(live) > 0 && r.Float64() < 0.35:
			idx := r.Intn(len(live))
			if err := m.Release(live[idx]); err != nil {
				t.Fatalf("step %d: release: %v", i, err)
			}
			live = append(live[:idx], live[idx+1:]...)
			m.ReplacePending()
		default:
			d, err := m.Request("stress", req, 1+r.Intn(9))
			if err != nil {
				failed++
			} else {
				placed++
				live = append(live, d.Task.ID)
			}
		}
		check(i)
	}
	if placed == 0 {
		t.Fatal("stress run placed nothing — scenario broken")
	}
	t.Logf("placed %d, failed %d, preemptions %d, token hits %d",
		placed, failed, m.Stats().Preemptions, m.Stats().TokenHits)
}
