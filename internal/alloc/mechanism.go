package alloc

// The mechanism half of the policy/mechanism split (DESIGN.md §13).
// Mechanism owns every interaction with the case base, the run-time
// system and the devices: resolving implementation records, taking the
// plain-data snapshots package policy scores, and executing the
// placements and preemptions policy decides. Manager composes the two
// (policy for choices, Mechanism for effects) and keeps its public API
// unchanged; the fleet layer drives a Mechanism per node directly.

import (
	"fmt"

	"qosalloc/internal/alloc/policy"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/rtsys"
)

// UnknownTypeError reports a request for a function type the case base
// does not hold.
type UnknownTypeError struct{ Type casebase.TypeID }

func (e *UnknownTypeError) Error() string {
	return fmt.Sprintf("alloc: unknown function type %d", e.Type)
}

// UnknownImplError reports a reference to an implementation variant the
// function type does not offer.
type UnknownImplError struct {
	Type casebase.TypeID
	Impl casebase.ImplID
}

func (e *UnknownImplError) Error() string {
	return fmt.Sprintf("alloc: type %d has no implementation %d", e.Type, e.Impl)
}

// Mechanism executes allocation decisions against one node's case base
// and run-time system. It holds no policy state: no options, no
// counters, no token cache — those stay in Manager (or the fleet).
type Mechanism struct {
	cb  *casebase.CaseBase
	sys *rtsys.System
}

// NewMechanism builds the execution layer over a case base and runtime.
func NewMechanism(cb *casebase.CaseBase, sys *rtsys.System) *Mechanism {
	return &Mechanism{cb: cb, sys: sys}
}

// System returns the underlying run-time system.
func (x *Mechanism) System() *rtsys.System { return x.sys }

// ImplOf resolves an implementation record.
func (x *Mechanism) ImplOf(ty casebase.TypeID, id casebase.ImplID) (*casebase.Implementation, error) {
	ft, ok := x.cb.Type(ty)
	if !ok {
		return nil, &UnknownTypeError{Type: ty}
	}
	im, ok := ft.Impl(id)
	if !ok {
		return nil, &UnknownImplError{Type: ty, Impl: id}
	}
	return im, nil
}

// PowerMW returns the power figure of an implementation, or
// policy.PowerUnknown when the record cannot be resolved — the value
// policy.PowerOrder treats as "rank by similarity alone".
func (x *Mechanism) PowerMW(ty casebase.TypeID, id casebase.ImplID) int {
	im, err := x.ImplOf(ty, id)
	if err != nil {
		return policy.PowerUnknown
	}
	return im.Foot.PowerMW
}

// TryPlace creates a task for app and places im on the first device of
// its target class with free capacity. When Place fails after CanPlace
// passed (capacity raced away, repository miss), the tentative task is
// completed and the walk continues.
func (x *Mechanism) TryPlace(app string, ty casebase.TypeID, im *casebase.Implementation, basePrio int) (*rtsys.Task, device.Device, error) {
	var lastErr error
	for _, dev := range x.sys.DevicesByKind(im.Target) {
		if !dev.CanPlace(im.Foot) {
			continue
		}
		task := x.sys.CreateTask(app, ty, basePrio)
		if err := x.sys.Place(task, dev, im); err != nil {
			lastErr = err
			_ = x.sys.Complete(task)
			continue
		}
		return task, dev, nil
	}
	if lastErr != nil {
		return nil, nil, fmt.Errorf("alloc: no %v device has capacity for impl %d: %w", im.Target, im.ID, lastErr)
	}
	return nil, nil, fmt.Errorf("alloc: no %v device has capacity for impl %d", im.Target, im.ID)
}

// PlaceExisting places an already-created (re-queued or preempted)
// task on the first device of im's target class with free capacity,
// reporting which device took it.
func (x *Mechanism) PlaceExisting(t *rtsys.Task, im *casebase.Implementation) (device.Device, bool) {
	for _, dev := range x.sys.DevicesByKind(im.Target) {
		if !dev.CanPlace(im.Foot) {
			continue
		}
		if err := x.sys.Place(t, dev, im); err != nil {
			continue
		}
		return dev, true
	}
	return nil, false
}

// Preempt evicts t, releasing its capacity; the task re-bids later
// with aged priority.
func (x *Mechanism) Preempt(t *rtsys.Task) error { return x.sys.Preempt(t) }

// Occupants snapshots dev's preemptible occupants for victim
// selection: tasks in Running or Configuring, in task-handle order
// (the order Placements reports), with their effective (aged)
// priorities. tasks is positionally aligned with the returned
// policy.Occupant slice so the caller can map the selected index back
// to a task.
func (x *Mechanism) Occupants(dev device.Device) ([]policy.Occupant, []*rtsys.Task) {
	var occ []policy.Occupant
	var tasks []*rtsys.Task
	for _, pl := range dev.Placements() {
		t, ok := x.sys.Task(rtsys.TaskID(pl.Task))
		if !ok || (t.State != rtsys.Running && t.State != rtsys.Configuring) {
			continue
		}
		occ = append(occ, policy.Occupant{Task: pl.Task, Prio: x.sys.EffectivePriority(t)})
		tasks = append(tasks, t)
	}
	return occ, tasks
}

// Waiting snapshots the preempted tasks (in task-handle order, the
// order Tasks reports) with their effective priorities, positionally
// aligned like Occupants.
func (x *Mechanism) Waiting() ([]policy.Occupant, []*rtsys.Task) {
	var occ []policy.Occupant
	var tasks []*rtsys.Task
	for _, t := range x.sys.Tasks() {
		if t.State != rtsys.Preempted {
			continue
		}
		occ = append(occ, policy.Occupant{Task: int(t.ID), Prio: x.sys.EffectivePriority(t)})
		tasks = append(tasks, t)
	}
	return occ, tasks
}

// TargetHealth snapshots which target classes exist on the platform
// and which still have a device accepting work — the inputs to
// policy.ExcludedTargets.
func (x *Mechanism) TargetHealth() (seen, alive map[casebase.Target]bool) {
	seen = make(map[casebase.Target]bool)
	alive = make(map[casebase.Target]bool)
	for _, d := range x.sys.Devices() {
		seen[d.Kind()] = true
		if d.Health() != device.Failed {
			alive[d.Kind()] = true
		}
	}
	return seen, alive
}

// View reduces the node to the plain-integer snapshot policy.RankNodes
// scores: surviving capacity, health, and queue pressure.
func (x *Mechanism) View(name string) policy.NodeView {
	v := policy.NodeView{Name: name, Failed: true}
	for _, d := range x.sys.Devices() {
		h := d.Health()
		if h != device.Failed {
			v.Failed = false
		}
		if h == device.Degraded {
			v.Degraded = true
		}
		switch dev := d.(type) {
		case *device.FPGA:
			if h == device.Failed {
				v.Degraded = true
				continue
			}
			v.FreeSlots += dev.FreeSlots()
		case *device.Processor:
			if h == device.Failed {
				v.Degraded = true
				continue
			}
			if free := dev.LoadCapacity - dev.Load(); free > 0 {
				v.FreeLoadPermille += free
			}
		default:
			if h == device.Failed {
				v.Degraded = true
			}
		}
	}
	for _, t := range x.sys.Tasks() {
		if t.State == rtsys.Pending || t.State == rtsys.Preempted {
			v.Waiting++
		}
	}
	return v
}
