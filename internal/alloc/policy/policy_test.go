package policy

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/retrieval"
)

// TestPurity parses every source file of this package and fails if the
// forbidden runtime imports creep in — the acceptance criterion that
// the policy layer has zero dependencies on rtsys or device.
func TestPurity(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ImportsOnly)
	if err != nil {
		t.Fatalf("parse package: %v", err)
	}
	for _, pkg := range pkgs {
		for file, f := range pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("%s: bad import %s", file, imp.Path.Value)
				}
				for _, banned := range []string{
					"qosalloc/internal/rtsys",
					"qosalloc/internal/device",
				} {
					if path == banned {
						t.Errorf("%s imports %s; policy must stay pure",
							filepath.Base(file), path)
					}
				}
			}
		}
	}
}

// --- Victim ordering (satellite: pins lowestVictim semantics) ----------

func TestLowestVictim(t *testing.T) {
	tests := []struct {
		name      string
		occ       []Occupant
		requester int
		want      int // index into occ; -1 = no victim
	}{
		{
			name:      "empty device",
			occ:       nil,
			requester: 5,
			want:      -1,
		},
		{
			name:      "single lower-priority occupant",
			occ:       []Occupant{{Task: 1, Prio: 3}},
			requester: 5,
			want:      0,
		},
		{
			name:      "equal priority is not preemptible (strictly below)",
			occ:       []Occupant{{Task: 1, Prio: 5}},
			requester: 5,
			want:      -1,
		},
		{
			name:      "higher priority is not preemptible",
			occ:       []Occupant{{Task: 1, Prio: 9}},
			requester: 5,
			want:      -1,
		},
		{
			name: "minimum wins among several eligible",
			occ: []Occupant{
				{Task: 1, Prio: 4},
				{Task: 2, Prio: 2},
				{Task: 3, Prio: 3},
			},
			requester: 5,
			want:      1,
		},
		{
			name: "equal-priority tie goes to the earliest occupant",
			occ: []Occupant{
				{Task: 7, Prio: 2},
				{Task: 9, Prio: 2},
				{Task: 11, Prio: 2},
			},
			requester: 5,
			want:      0,
		},
		{
			name: "tie on the minimum after a higher entry",
			occ: []Occupant{
				{Task: 3, Prio: 4},
				{Task: 5, Prio: 1},
				{Task: 8, Prio: 1},
			},
			requester: 5,
			want:      1,
		},
		{
			name: "mixed eligibility: only strictly-below considered",
			occ: []Occupant{
				{Task: 1, Prio: 9}, // above requester
				{Task: 2, Prio: 5}, // equal — ineligible
				{Task: 3, Prio: 4},
				{Task: 4, Prio: 4}, // tie with task 3, later — loses
			},
			requester: 5,
			want:      2,
		},
		{
			name: "aged priorities can disqualify every occupant",
			occ: []Occupant{
				{Task: 1, Prio: 6},
				{Task: 2, Prio: 7},
			},
			requester: 5,
			want:      -1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := LowestVictim(tt.occ, tt.requester)
			if tt.want == -1 {
				if ok {
					t.Fatalf("LowestVictim = %d (task %d), want no victim",
						got, tt.occ[got].Task)
				}
				return
			}
			if !ok {
				t.Fatalf("LowestVictim found no victim, want index %d (task %d)",
					tt.want, tt.occ[tt.want].Task)
			}
			if got != tt.want {
				t.Errorf("LowestVictim = index %d (task %d), want index %d (task %d)",
					got, tt.occ[got].Task, tt.want, tt.occ[tt.want].Task)
			}
		})
	}
}

// TestLowestVictimPreemptiveWalk pins the ordering tryPreemptivePlace
// relies on: the victim is re-selected per device with the requester's
// base priority as the bar, and eviction of the selected victim must
// never cascade to a second equal-priority occupant in the same pass
// (the mechanism re-snapshots after each eviction; the tie still goes
// to the earliest survivor).
func TestLowestVictimPreemptiveWalk(t *testing.T) {
	occ := []Occupant{
		{Task: 2, Prio: 1},
		{Task: 4, Prio: 1},
		{Task: 6, Prio: 3},
	}
	first, ok := LowestVictim(occ, 4)
	if !ok || occ[first].Task != 2 {
		t.Fatalf("first victim = %v/%v, want task 2", first, ok)
	}
	// After task 2 is evicted the snapshot shrinks; the tie-break again
	// picks the earliest remaining minimum.
	rest := occ[1:]
	second, ok := LowestVictim(rest, 4)
	if !ok || rest[second].Task != 4 {
		t.Fatalf("second victim = %v/%v, want task 4", second, ok)
	}
	// A requester at the victims' priority gets nothing: preemption is
	// strictly-below, so equal-priority storms cannot evict each other.
	if i, ok := LowestVictim(rest[1:], 3); ok {
		t.Fatalf("requester at prio 3 evicted task %d; want no victim", rest[1:][i].Task)
	}
}

func TestBestWaiting(t *testing.T) {
	tests := []struct {
		name    string
		waiting []Occupant
		want    int
	}{
		{name: "empty", waiting: nil, want: -1},
		{
			name:    "single",
			waiting: []Occupant{{Task: 1, Prio: 0}},
			want:    0,
		},
		{
			name: "highest aged priority wins",
			waiting: []Occupant{
				{Task: 1, Prio: 2},
				{Task: 2, Prio: 8},
				{Task: 3, Prio: 5},
			},
			want: 1,
		},
		{
			name: "equal-priority tie goes to the earliest task",
			waiting: []Occupant{
				{Task: 4, Prio: 6},
				{Task: 9, Prio: 6},
			},
			want: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := BestWaiting(tt.waiting)
			if tt.want == -1 {
				if ok {
					t.Fatalf("BestWaiting = %d, want none", got)
				}
				return
			}
			if !ok || got != tt.want {
				t.Errorf("BestWaiting = %d/%v, want %d", got, ok, tt.want)
			}
		})
	}
}

// --- Power ordering -----------------------------------------------------

func TestPowerOrder(t *testing.T) {
	tests := []struct {
		name   string
		sims   []float64
		power  []int
		weight float64
		want   []int
	}{
		{
			name: "zero weight keeps similarity order",
			sims: []float64{0.9, 0.8, 0.7}, power: []int{900, 10, 10},
			weight: 0, want: []int{0, 1, 2},
		},
		{
			name: "power discount flips a hungry best match",
			sims: []float64{0.9, 0.8}, power: []int{900, 100},
			weight: 0.5, want: []int{1, 0}, // 0.45 vs 0.75
		},
		{
			name: "unknown power keeps raw similarity",
			sims: []float64{0.9, 0.8}, power: []int{PowerUnknown, 100},
			weight: 0.5, want: []int{0, 1}, // 0.9 vs 0.75
		},
		{
			name: "equal scores stay in similarity order (stable)",
			sims: []float64{0.8, 0.8, 0.8}, power: []int{200, 200, 200},
			weight: 1, want: []int{0, 1, 2},
		},
		{
			name: "empty",
			sims: nil, power: nil, weight: 1, want: []int{},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := PowerOrder(tt.sims, tt.power, tt.weight)
			if len(got) == 0 && len(tt.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("PowerOrder = %v, want %v", got, tt.want)
			}
		})
	}
}

// --- Degradation accounting ---------------------------------------------

func TestLostAttrs(t *testing.T) {
	loc := func(pairs ...float64) []retrieval.LocalScore {
		var out []retrieval.LocalScore
		for i := 0; i+1 < len(pairs); i += 2 {
			out = append(out, retrieval.LocalScore{ID: uint16(pairs[i]), Sim: pairs[i+1]})
		}
		return out
	}
	tests := []struct {
		name     string
		from, to []retrieval.LocalScore
		want     []attr.ID
	}{
		{name: "no substitute breakdown", from: loc(1, 0.9), to: nil, want: nil},
		{
			name: "substitute worse on one attribute",
			from: loc(1, 0.9, 2, 0.8), to: loc(1, 0.9, 2, 0.5),
			want: []attr.ID{2},
		},
		{
			name: "substitute equal or better loses nothing",
			from: loc(1, 0.5, 2, 0.8), to: loc(1, 0.5, 2, 0.9),
			want: nil,
		},
		{
			name: "no original: every imperfect local counts",
			from: nil, to: loc(1, 1.0, 2, 0.7),
			want: []attr.ID{2},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := LostAttrs(tt.from, tt.to)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("LostAttrs = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsDegradation(t *testing.T) {
	if IsDegradation(0.8, 0.8, nil) {
		t.Error("equal similarity with no lost attrs should not degrade")
	}
	if !IsDegradation(0.8, 0.7, nil) {
		t.Error("similarity drop must degrade")
	}
	if !IsDegradation(0.8, 0.9, []attr.ID{3}) {
		t.Error("lost attribute must degrade even when global similarity rose")
	}
}

func TestExcludedTargets(t *testing.T) {
	seen := map[casebase.Target]bool{
		casebase.TargetFPGA: true, casebase.TargetDSP: true, casebase.TargetGPP: true,
	}
	alive := map[casebase.Target]bool{casebase.TargetDSP: true}
	got := ExcludedTargets(seen, alive)
	want := []casebase.Target{casebase.TargetFPGA, casebase.TargetGPP}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExcludedTargets = %v, want %v (canonical order)", got, want)
	}
	if !TargetExcluded(got, casebase.TargetFPGA) || TargetExcluded(got, casebase.TargetDSP) {
		t.Error("TargetExcluded membership wrong")
	}
	// A target class that was never present is not "excluded" — there
	// is nothing to degrade away from.
	if out := ExcludedTargets(map[casebase.Target]bool{casebase.TargetGPP: true},
		map[casebase.Target]bool{casebase.TargetGPP: true}); out != nil {
		t.Errorf("healthy platform excluded %v", out)
	}
}

// --- Node ranking -------------------------------------------------------

func TestRankNodes(t *testing.T) {
	tests := []struct {
		name  string
		views []NodeView
		want  []string // node names best-first
	}{
		{
			name: "healthy before degraded before failed",
			views: []NodeView{
				{Name: "n0", Failed: true},
				{Name: "n1", Degraded: true, FreeSlots: 9},
				{Name: "n2", FreeSlots: 1},
			},
			want: []string{"n2", "n1", "n0"},
		},
		{
			name: "more free capacity first",
			views: []NodeView{
				{Name: "n0", FreeSlots: 1},
				{Name: "n1", FreeSlots: 3},
				{Name: "n2", FreeLoadPermille: 3500},
			},
			want: []string{"n2", "n1", "n0"},
		},
		{
			name: "fewer waiters breaks capacity ties",
			views: []NodeView{
				{Name: "n0", FreeSlots: 2, Waiting: 4},
				{Name: "n1", FreeSlots: 2, Waiting: 1},
			},
			want: []string{"n1", "n0"},
		},
		{
			name: "name is the final tie-break",
			views: []NodeView{
				{Name: "nodeB", FreeSlots: 2},
				{Name: "nodeA", FreeSlots: 2},
				{Name: "nodeC", FreeSlots: 2},
			},
			want: []string{"nodeA", "nodeB", "nodeC"},
		},
		{
			name: "slot weighted like a full core",
			views: []NodeView{
				{Name: "n0", FreeLoadPermille: 999},
				{Name: "n1", FreeSlots: 1},
			},
			want: []string{"n1", "n0"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			order := RankNodes(tt.views)
			var got []string
			for _, i := range order {
				got = append(got, tt.views[i].Name)
			}
			if strings.Join(got, ",") != strings.Join(tt.want, ",") {
				t.Errorf("RankNodes = %v, want %v", got, tt.want)
			}
		})
	}
}
