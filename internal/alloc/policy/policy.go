// Package policy is the pure decision half of the allocation layer:
// candidate ordering, preemption-victim selection, degradation
// accounting, and cross-node placement scoring. Every function here is
// a side-effect-free computation over plain data snapshots — the
// mechanism layer (package alloc) resolves implementation records,
// takes device snapshots, and executes whatever this package decides.
//
// The split mirrors how adaptive reconfigurable-system managers
// separate *where to place* from *how to place*: floor-plan/region
// managers score candidate regions with a pure cost function and hand
// the winner to a loader that owns the reconfiguration port. Keeping
// the scoring side pure makes it table-testable (the preemption
// ordering below is pinned by exhaustive tables) and lets the fleet
// layer reuse the same ranking across many nodes without touching any
// run-time state.
//
// The package must stay free of rtsys and device imports — a test
// parses the sources and fails if either creeps in. Time, priorities
// and capacities arrive as plain integers.
package policy

import (
	"sort"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/retrieval"
)

// --- Candidate ordering -------------------------------------------------

// PowerUnknown marks a candidate whose implementation record (and so
// its power figure) could not be resolved; its score falls back to the
// raw similarity, matching the paper's pure-similarity ranking.
const PowerUnknown = -1

// PowerOrder returns the candidate visit order after power
// discounting: a permutation of indices into sims, stable for equal
// scores, ranked by S - weight·(powerMW/1000). powerMW is positionally
// aligned with sims; PowerUnknown entries keep their raw similarity.
// A zero weight returns the identity order (the paper's ranking).
func PowerOrder(sims []float64, powerMW []int, weight float64) []int {
	order := make([]int, len(sims))
	for i := range order {
		order[i] = i
	}
	if weight == 0 {
		return order
	}
	score := func(i int) float64 {
		if powerMW[i] == PowerUnknown {
			return sims[i]
		}
		return sims[i] - weight*float64(powerMW[i])/1000
	}
	sort.SliceStable(order, func(a, b int) bool {
		return score(order[a]) > score(order[b])
	})
	return order
}

// --- Preemption-victim selection ----------------------------------------

// Occupant is one live placement on a device, reduced to what victim
// selection needs: the task handle (for reporting) and its effective
// (aged) priority. The mechanism layer lists occupants in task-handle
// order and pre-filters to preemptible lifecycle states.
type Occupant struct {
	Task int
	Prio int
}

// LowestVictim selects the occupant to evict for a requester at
// requesterPrio: the occupant with the lowest effective priority,
// provided it is strictly below the requester's. Ties on the minimum
// go to the earliest occupant in the list (the lowest task handle,
// given the mechanism's ordering) — a deterministic choice the
// preemption tables pin, including equal-priority ties. Returns the
// index into occ, or ok=false when no occupant is strictly below the
// requester.
func LowestVictim(occ []Occupant, requesterPrio int) (int, bool) {
	victim := -1
	victimPrio := requesterPrio // must be strictly below the requester
	for i, o := range occ {
		if o.Prio < victimPrio {
			victim = i
			victimPrio = o.Prio
		}
	}
	return victim, victim >= 0
}

// BestWaiting selects the waiting task to re-place first: the highest
// effective priority wins; ties go to the earliest entry (lowest task
// handle, given the mechanism's ordering). Returns ok=false for an
// empty list.
func BestWaiting(waiting []Occupant) (int, bool) {
	best := -1
	bestPrio := 0
	for i, w := range waiting {
		if best == -1 || w.Prio > bestPrio {
			best = i
			bestPrio = w.Prio
		}
	}
	return best, best >= 0
}

// --- Degradation accounting ---------------------------------------------

// IsDegradation reports whether a recovery onto a substitute variant
// cost the application QoS: the global similarity dropped, or at least
// one requested attribute is satisfied worse.
func IsDegradation(fromSim, toSim float64, lost []attr.ID) bool {
	return toSim < fromSim || len(lost) > 0
}

// LostAttrs compares the per-attribute similarity breakdowns of the
// original and the substitute variant (positionally aligned, the order
// retrieval reports locals in) and returns the attributes the
// substitute satisfies worse. With no original breakdown, every
// imperfect local of the substitute counts as lost.
func LostAttrs(fromLoc, toLoc []retrieval.LocalScore) []attr.ID {
	if toLoc == nil {
		return nil
	}
	var out []attr.ID
	for i, tl := range toLoc {
		if fromLoc != nil && i < len(fromLoc) {
			if tl.Sim < fromLoc[i].Sim {
				out = append(out, attr.ID(tl.ID))
			}
		} else if tl.Sim < 1 {
			out = append(out, attr.ID(tl.ID))
		}
	}
	return out
}

// RejectedAttrs names the lost QoS attributes of a rejection: the
// requested attributes the best examined candidate could not fully
// satisfy, or every requested attribute when nothing was examined.
func RejectedAttrs(req casebase.Request, tried []retrieval.Result) []attr.ID {
	if len(tried) == 0 {
		out := make([]attr.ID, 0, len(req.Constraints))
		for _, c := range req.Constraints {
			out = append(out, c.ID)
		}
		return out
	}
	var out []attr.ID
	for _, l := range tried[0].Locals {
		if l.Sim < 1 {
			out = append(out, attr.ID(l.ID))
		}
	}
	return out
}

// ExcludedTargets returns the target classes present on the platform
// but with no device able to accept work — the "failed target" a
// degrade-and-retry retrieval excludes. Canonical FPGA, DSP, GPP order
// keeps reports and replays stable.
func ExcludedTargets(seen, alive map[casebase.Target]bool) []casebase.Target {
	var out []casebase.Target
	for _, k := range []casebase.Target{casebase.TargetFPGA, casebase.TargetDSP, casebase.TargetGPP} {
		if seen[k] && !alive[k] {
			out = append(out, k)
		}
	}
	return out
}

// TargetExcluded reports whether t is in the excluded list.
func TargetExcluded(excluded []casebase.Target, t casebase.Target) bool {
	for _, e := range excluded {
		if e == t {
			return true
		}
	}
	return false
}

// --- Cross-node placement scoring ---------------------------------------

// NodeView is one fleet node's placement snapshot, reduced to plain
// integers: no device handles, no runtime pointers. The fleet layer
// produces one view per node and ranks them here.
type NodeView struct {
	// Name identifies the node; the final ranking tie-break, so node
	// order never depends on map iteration or construction order.
	Name string
	// Failed means no device on the node accepts work at all.
	Failed bool
	// Degraded means the node lost part of its capacity to faults
	// (failed FPGA slots or a dead device) but still accepts work.
	Degraded bool
	// FreeSlots counts unoccupied healthy FPGA slots.
	FreeSlots int
	// FreeLoadPermille sums the uncommitted processor budget across the
	// node's DSPs and GPPs, in permille.
	FreeLoadPermille int
	// Waiting counts tasks parked in Pending or Preempted.
	Waiting int
}

// capacityScore folds a view's free capacity into one integer: an FPGA
// slot is weighted like one fully idle core, so mixed platforms
// compare sensibly.
func (v NodeView) capacityScore() int {
	return v.FreeSlots*1000 + v.FreeLoadPermille
}

// RankNodes orders node indices best-first for a new placement:
// accepting nodes before failed ones, fully healthy before degraded
// (a storm-hit node keeps its surviving capacity for recovering its
// own tenants), then more free capacity, fewer waiters, and finally
// ascending name. The result is a pure function of the views, so a
// fleet replay places identically at any node count.
func RankNodes(views []NodeView) []int {
	order := make([]int, len(views))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := views[order[a]], views[order[b]]
		if va.Failed != vb.Failed {
			return !va.Failed
		}
		if va.Degraded != vb.Degraded {
			return !va.Degraded
		}
		if ca, cb := va.capacityScore(), vb.capacityScore(); ca != cb {
			return ca > cb
		}
		if va.Waiting != vb.Waiting {
			return va.Waiting < vb.Waiting
		}
		return va.Name < vb.Name
	})
	return order
}
