package alloc

import (
	"errors"
	"math"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/learn"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtsys"
)

// platform builds the fig. 1 style test system: 2-slot FPGA, DSP, GPP.
func platform(t *testing.T, opt Options) (*Manager, *rtsys.System) {
	t.Helper()
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	repo := device.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		t.Fatal(err)
	}
	fpga := device.NewFPGA("fpga0", []device.Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
	dsp := device.NewProcessor("dsp0", casebase.TargetDSP, 1000, 128*1024)
	gpp := device.NewProcessor("gpp0", casebase.TargetGPP, 1000, 256*1024)
	sys := rtsys.NewSystem(repo, fpga, dsp, gpp)
	return New(cb, sys, opt), sys
}

func TestRequestPicksTableOneBest(t *testing.T) {
	m, _ := platform(t, Options{})
	d, err := m.Request("mp3", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Impl != 2 || d.Target != casebase.TargetDSP || d.Device != "dsp0" {
		t.Errorf("decision = %+v, want DSP impl 2 on dsp0", d)
	}
	if math.Abs(d.Similarity-0.96) > 0.01 {
		t.Errorf("similarity = %v", d.Similarity)
	}
	if d.ViaToken {
		t.Error("first call cannot be a token hit")
	}
	if d.ReadyAt == 0 {
		t.Error("ready time must reflect opcode loading")
	}
	st := m.Stats()
	if st.Requests != 1 || st.Placed != 1 || st.Retrievals != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFallbackToSecondBestWhenDSPFull(t *testing.T) {
	m, _ := platform(t, Options{})
	// Saturate the DSP with two 450-permille loads.
	for i := 0; i < 2; i++ {
		if _, err := m.Request("mp3", casebase.PaperRequest(), 5); err != nil {
			t.Fatal(err)
		}
	}
	// Third request: DSP variant infeasible → second-best (FPGA, 0.85).
	d, err := m.Request("mp3", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Impl != 1 || d.Target != casebase.TargetFPGA {
		t.Errorf("fallback decision = %+v, want FPGA impl 1", d)
	}
	if math.Abs(d.Similarity-0.85) > 0.01 {
		t.Errorf("fallback similarity = %v", d.Similarity)
	}
}

func TestThresholdRejection(t *testing.T) {
	m, _ := platform(t, Options{Threshold: 0.99})
	_, err := m.Request("mp3", casebase.PaperRequest(), 5)
	var nm *retrieval.ErrNoMatch
	if !errors.As(err, &nm) {
		t.Fatalf("want ErrNoMatch, got %v", err)
	}
	if m.Stats().Rejected != 1 {
		t.Error("rejection not counted")
	}
}

func TestRelaxedRequestAdmitsLowVariant(t *testing.T) {
	// §3: "the application has to repeat its request with rather
	// relaxed constraints giving a chance to the third low performance
	// implementation."
	m, _ := platform(t, Options{Threshold: 0.5})
	req := casebase.PaperRequest()
	// With threshold 0.5 the GP-Proc variant (0.43) is rejected; relax
	// the sample-rate constraint and it scores 1/3·(0.11+0.66)→ no,
	// relaxing bitwidth: (0.66+0.51)/2 ≈ 0.59 — above threshold.
	relaxed, ok := req.Relax(casebase.AttrBitwidth)
	if !ok {
		t.Fatal("relax failed")
	}
	all, err := m.Engine().RetrieveAll(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	var gpp float64
	for _, r := range all {
		if r.Impl == 3 {
			gpp = r.Similarity
		}
	}
	if gpp < 0.5 {
		t.Fatalf("relaxed GP-Proc similarity = %v, expected above threshold", gpp)
	}
}

func TestNoFeasibleOffersAlternatives(t *testing.T) {
	// Tiny platform: only a GPP, so FPGA/DSP variants can never place;
	// saturate the GPP, then ask again.
	cb, _ := casebase.PaperCaseBase()
	repo := device.NewRepository(20)
	_ = repo.PopulateFromCaseBase(cb)
	gpp := device.NewProcessor("gpp0", casebase.TargetGPP, 1000, 256*1024)
	sys := rtsys.NewSystem(repo, gpp)
	m := New(cb, sys, Options{})

	if _, err := m.Request("a", casebase.PaperRequest(), 5); err != nil {
		t.Fatal(err) // takes the GP-Proc variant (700 permille)
	}
	_, err := m.Request("b", casebase.PaperRequest(), 5)
	var nf *ErrNoFeasible
	if !errors.As(err, &nf) {
		t.Fatalf("want ErrNoFeasible, got %v", err)
	}
	if len(nf.Alternatives) == 0 {
		t.Error("alternatives must be offered")
	}
	if nf.Error() == "" {
		t.Error("error must render")
	}
	if m.Stats().Infeasible != 1 {
		t.Error("infeasible not counted")
	}
}

func TestPreemptionEvictsLowerPriority(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	repo := device.NewRepository(20)
	_ = repo.PopulateFromCaseBase(cb)
	dsp := device.NewProcessor("dsp0", casebase.TargetDSP, 500, 128*1024)
	sys := rtsys.NewSystem(repo, dsp)
	m := New(cb, sys, Options{AllowPreemption: true, NBest: 1})

	low, err := m.Request("bg", casebase.PaperRequest(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Second request at higher priority: DSP full (450/500), preempt.
	high, err := m.Request("fg", casebase.PaperRequest(), 9)
	if err != nil {
		t.Fatalf("preemptive place failed: %v", err)
	}
	if len(high.Preempted) != 1 || high.Preempted[0] != low.Task.ID {
		t.Errorf("preempted = %v, want [%d]", high.Preempted, low.Task.ID)
	}
	if low.Task.State != rtsys.Preempted {
		t.Errorf("victim state = %v", low.Task.State)
	}
	if m.Stats().Preemptions != 1 {
		t.Error("preemption not counted")
	}
	// Equal priority must NOT preempt.
	if _, err := m.Request("fg2", casebase.PaperRequest(), 9); err == nil {
		t.Error("equal-priority preemption must fail")
	}
	// After the high task finishes, the victim returns via
	// ReplacePending.
	if err := m.Release(high.Task.ID); err != nil {
		t.Fatal(err)
	}
	if n := m.ReplacePending(); n != 1 {
		t.Errorf("ReplacePending = %d, want 1", n)
	}
	if low.Task.State != rtsys.Configuring {
		t.Errorf("victim state after recovery = %v", low.Task.State)
	}
}

func TestBypassTokens(t *testing.T) {
	m, _ := platform(t, Options{UseBypassTokens: true})
	req := casebase.PaperRequest()
	d1, err := m.Request("mp3", req, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(d1.Task.ID); err != nil {
		t.Fatal(err)
	}
	d2, err := m.Request("mp3", req, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.ViaToken {
		t.Error("second identical request should hit the bypass token")
	}
	if d2.Impl != d1.Impl {
		t.Error("token must pin the same implementation")
	}
	st := m.Stats()
	if st.TokenHits != 1 {
		t.Errorf("token hits = %d", st.TokenHits)
	}
	// Retrieval ran only once.
	if st.Retrievals != 1 {
		t.Errorf("retrievals = %d, want 1", st.Retrievals)
	}
	// Case-base update invalidates tokens for the type.
	if n := m.InvalidateCaseBase(casebase.TypeFIREqualizer); n != 1 {
		t.Errorf("invalidated %d tokens", n)
	}
	d3, err := m.Request("mp3", req, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d3.ViaToken {
		t.Error("invalidated token must not hit")
	}
}

func TestTokenFallsBackWhenVariantBusy(t *testing.T) {
	m, _ := platform(t, Options{UseBypassTokens: true})
	req := casebase.PaperRequest()
	// Two DSP placements exhaust the DSP; the token points at the DSP
	// variant but the third call must fall back to retrieval and the
	// FPGA variant.
	if _, err := m.Request("a", req, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Request("b", req, 5); err != nil {
		t.Fatal(err)
	}
	d, err := m.Request("c", req, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.ViaToken || d.Target != casebase.TargetFPGA {
		t.Errorf("busy-token fallback = %+v", d)
	}
}

func TestUpdateCaseBaseSwapsTreeAndDropsTokens(t *testing.T) {
	m, _ := platform(t, Options{UseBypassTokens: true})
	req := casebase.PaperRequest()
	d1, err := m.Request("mp3", req, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(d1.Task.ID); err != nil {
		t.Fatal(err)
	}
	if m.TokenCache().Len() == 0 {
		t.Fatal("token should be cached")
	}
	// A learner retires the DSP variant at run time; the manager swaps
	// in the rebuilt tree.
	l, err := learn.NewLearner(m.Engine().CaseBase(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Retire(casebase.TypeFIREqualizer, 2); err != nil {
		t.Fatal(err)
	}
	cb2, _, err := l.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	m.UpdateCaseBase(cb2)
	if m.TokenCache().Len() != 0 {
		t.Error("tokens must be invalidated on case-base update")
	}
	d2, err := m.Request("mp3", req, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Impl == 2 {
		t.Error("retired variant must not be selected")
	}
	if d2.ViaToken {
		t.Error("stale token must not hit after update")
	}
	if d2.Impl != 1 || d2.Target != casebase.TargetFPGA {
		t.Errorf("post-update decision = %+v, want FPGA impl 1", d2)
	}
}

func TestReleaseUnknownTask(t *testing.T) {
	m, _ := platform(t, Options{})
	if err := m.Release(999); err == nil {
		t.Error("unknown task must fail")
	}
}

func TestRequestInvalidType(t *testing.T) {
	m, _ := platform(t, Options{})
	bad := casebase.NewRequest(77, casebase.Constraint{ID: 1, Value: 16, Weight: 1})
	if _, err := m.Request("x", bad, 5); err == nil {
		t.Error("invalid request must fail")
	}
}

func TestPowerWeightPrefersLowPowerVariant(t *testing.T) {
	// The FPGA variant (310 mW) tops Table 1's DSP variant (220 mW)
	// only when similarity is all that counts. A strong power weight
	// must flip a near-tie; here DSP already wins on similarity, so
	// check the GPP variant (150 mW) overtakes under an extreme weight.
	m, _ := platform(t, Options{PowerWeight: 5})
	d, err := m.Request("mp3", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Scores: DSP 0.96-5*0.22=-0.14, FPGA 0.85-5*0.31=-0.70,
	// GPP 0.43-5*0.15=-0.32 → DSP still first, GPP second, FPGA last.
	if d.Impl != 2 {
		t.Errorf("impl = %d, want DSP still first at weight 5", d.Impl)
	}
	// Saturate the DSP; the power-aware fallback must now be the GPP
	// variant (not the FPGA one the pure ranking would pick).
	if _, err := m.Request("b", casebase.PaperRequest(), 5); err != nil {
		t.Fatal(err)
	}
	d3, err := m.Request("c", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Target != casebase.TargetGPP {
		t.Errorf("power-aware fallback = %v, want GP-Proc", d3.Target)
	}
}

func TestPlaceCandidatesMatchesRequest(t *testing.T) {
	// PlaceCandidates with the engine's own N-best list must reach the
	// same decision as the fused Request path — the contract the serve
	// layer's sharded retrieval relies on.
	m, _ := platform(t, Options{})
	req := casebase.PaperRequest()
	candidates, err := m.Engine().RetrieveN(req, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.PlaceCandidates("mp3", req, candidates, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Impl != 2 || d.Target != casebase.TargetDSP || d.Device != "dsp0" {
		t.Errorf("decision = %+v, want DSP impl 2 on dsp0", d)
	}
	st := m.Stats()
	if st.Requests != 1 || st.Placed != 1 {
		t.Errorf("stats = %+v, want 1 request / 1 placed", st)
	}
	// A bypass token was stored for the signature.
	if _, ok := m.TokenCache().Lookup(req); !ok {
		t.Error("PlaceCandidates did not store a bypass token")
	}
	// An empty candidate list is a structured infeasibility.
	_, err = m.PlaceCandidates("mp3", req, nil, 5)
	var nf *ErrNoFeasible
	if !errors.As(err, &nf) {
		t.Errorf("empty candidates = %v, want ErrNoFeasible", err)
	}
}
