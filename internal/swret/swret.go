// Package swret is the software implementation of the retrieval
// algorithm, the baseline of the paper's §4.2 comparison: "Apart from the
// hardware implementation we also mapped the retrieval algorithm into a C
// program running on a Xilinx MicroBlaze soft-processor at 66 MHz."
//
// The routine is hand-written mb32 assembly operating on exactly the same
// 16-bit list images the hardware unit reads (fig. 4/5 layouts): the
// implementation tree and supplemental list in one memory region, the
// request list in another. It mirrors the fig. 6 control flow — type
// scan, per-implementation attribute matching with resumable sorted-list
// scans, eq. (1) local similarity via the pre-computed reciprocal, eq.
// (2) weighted accumulation, running best — and therefore produces
// bit-identical Q15 results to the hardware unit and the fixed-point
// engine (tests enforce this three-way agreement).
package swret

import (
	"errors"
	"fmt"

	"qosalloc/internal/casebase"
	"qosalloc/internal/fixed"
	"qosalloc/internal/mb32"
	"qosalloc/internal/memlist"
)

// ErrTypeNotFound is returned when the requested function type is not
// present in the case-base image — the routine's RegError outcome,
// matching the hardware unit's StError terminal state.
var ErrTypeNotFound = errors.New("swret: requested type not found in case base")

// ErrNoImplementations is returned when the type entry exists but its
// implementation sub-list is empty, so no best similarity was latched.
var ErrNoImplementations = errors.New("swret: no implementations for requested type")

// Register conventions of the routine.
const (
	// RegSuppBase (input): byte address of the supplemental list.
	RegSuppBase = 20
	// RegReqBase (input): byte address of the request list.
	RegReqBase = 21
	// RegBestSim (output): best global similarity, Q15; -1 if none.
	RegBestSim = 18
	// RegBestID (output): implementation ID of the best match.
	RegBestID = 19
	// RegError (output): 0 on success, 1 when the requested function
	// type is not present in the case base.
	RegError = 25
)

// Source is the retrieval routine. The implementation tree is assumed at
// byte address 0; r20/r21 carry the supplemental and request base
// addresses. Pointers inside the images are word addresses and are
// rescaled to bytes with one add (×2).
const Source = `
; QoS retrieval, most-similar variant (fig. 6).
; inputs:  r20 = supplemental base (bytes), r21 = request base (bytes)
; outputs: r18 = best Q15 similarity, r19 = best impl ID, r25 = error
start:
	lhu  r3, r21, 0          ; requested function type
	addi r5, r0, 0           ; tp = tree base
	addi r24, r0, 32767      ; Q15 one
typescan:
	lhu  r6, r5, 0           ; case-base type ID
	beqz r6, notfound        ; end of type list
	sub  r22, r6, r3
	beqz r22, typefound
	addi r5, r5, 4           ; next (ID, ptr) entry
	br   typescan
typefound:
	lhu  r7, r5, 2           ; implementation list pointer (words)
	add  r7, r7, r7          ; bytes
	addi r18, r0, -1         ; best = -1 so an all-zero S still wins once
	addi r19, r0, 0
implscan:
	lhu  r12, r7, 0          ; implementation ID
	beqz r12, done           ; end of sub-list: deliver best
	lhu  r8, r7, 2           ; attribute list pointer (words)
	add  r8, r8, r8          ; bytes
	add  r9, r8, r0          ; cp = attribute scan (resumable)
	add  r10, r20, r0        ; sp = supplemental scan (resumable)
	addi r11, r21, 2         ; rp = first request attribute block
	addi r17, r0, 0          ; acc = 0
reqattr:
	lhu  r13, r11, 0         ; request attribute ID
	beqz r13, bestcmp        ; last attribute processed
	lhu  r14, r11, 2         ; requested value
	lhu  r23, r11, 4         ; weight (Q15)
suppscan:
	lhu  r6, r10, 0          ; supplemental entry ID
	beqz r6, nextattr        ; table miss: s_i = 0
	sub  r22, r6, r13
	beqz r22, suppfound
	bgtz r22, nextattr       ; scanned past: s_i = 0
	addi r10, r10, 8         ; next 4-word block
	br   suppscan
suppfound:
	lhu  r16, r10, 6         ; (1+dmax)^-1, UQ16
cbscan:
	lhu  r6, r9, 0           ; implementation attribute ID
	beqz r6, nextattr        ; end of list: attribute missing, s_i = 0
	sub  r22, r6, r13
	beqz r22, cbfound
	bgtz r22, nextattr       ; sorted list passed the ID: missing
	addi r9, r9, 4           ; pass smaller IDs, resume point advances
	br   cbscan
cbfound:
	lhu  r6, r9, 2           ; implementation value
	addi r9, r9, 4           ; consume matched entry
	sub  r22, r14, r6        ; d = |Areq - Acb|
	bgez r22, absok
	sub  r22, r6, r14
absok:
	mul  r22, r22, r16       ; d × recip → UQ16 quotient
	srli r22, r22, 1         ; align to Q15
	sub  r22, r24, r22       ; s_i = 1 - d/(1+dmax)
	bgez r22, sok
	addi r22, r0, 0          ; saturate at 0
sok:
	mul  r22, r22, r23       ; w × s_i, Q30
	srli r22, r22, 15        ; Q15
	add  r17, r17, r22       ; S += w·s_i
	sub  r22, r24, r17
	bgez r22, nextattr
	add  r17, r24, r0        ; saturate S at 1.0
nextattr:
	addi r11, r11, 6         ; next 3-word request block
	br   reqattr
bestcmp:
	sub  r22, r17, r18       ; S > Sbest ?
	blez r22, nextimpl
	add  r18, r17, r0        ; keep S
	add  r19, r12, r0        ; keep ID
nextimpl:
	addi r7, r7, 4
	br   implscan
done:
	addi r25, r0, 0
	halt
notfound:
	addi r25, r0, 1
	addi r18, r0, -1
	addi r19, r0, 0
	halt
`

// Result of a software retrieval.
type Result struct {
	ImplID       uint16
	Sim          fixed.Q15
	Cycles       uint64
	Instructions uint64
}

// Runner holds the assembled routine.
type Runner struct {
	prog  []mb32.Instr
	costs mb32.CostModel
}

// NewRunner assembles the routine once, costed for the 2004-era base
// MicroBlaze configuration (no barrel shifter) the paper's 66 MHz soft
// core most plausibly used.
func NewRunner() *Runner {
	return NewRunnerWithCosts(mb32.MicroBlazeBaseCosts())
}

// NewRunnerWithCosts assembles the routine with an explicit processor
// cost model — e.g. mb32.MicroBlazeCosts() for a core with the optional
// barrel shifter.
func NewRunnerWithCosts(c mb32.CostModel) *Runner {
	return &Runner{prog: mb32.MustAssemble(Source), costs: c}
}

// CodeBytes returns the routine's opcode size — the "1984 bytes of
// opcode" figure of §4.2 for the paper's C version.
func (r *Runner) CodeBytes() int { return 4 * len(r.prog) }

// Instructions returns the static instruction count.
func (r *Runner) Instructions() int { return len(r.prog) }

// Layout describes where the images land in the CPU's data memory.
type Layout struct {
	TreeBase  int
	SuppBase  int
	ReqBase   int
	MemBytes  int
	DataBytes int // total image footprint, the "bytes for variables" share
}

// LayoutFor computes the memory layout for a case base and request.
func LayoutFor(tree, supp, req *memlist.Image) Layout {
	treeBytes := tree.Size()
	suppBase := treeBytes
	reqBase := align4(suppBase + supp.Size())
	total := align4(reqBase+req.Size()) + 64
	return Layout{
		TreeBase: 0, SuppBase: suppBase, ReqBase: reqBase,
		MemBytes:  total,
		DataBytes: tree.Size() + supp.Size() + req.Size(),
	}
}

func align4(n int) int { return (n + 3) &^ 3 }

// Retrieve runs the routine against cb and req and returns the best
// match with its cycle cost.
func (r *Runner) Retrieve(cb *casebase.CaseBase, req casebase.Request) (Result, error) {
	if err := req.Validate(cb); err != nil {
		return Result{}, err
	}
	tree, err := memlist.EncodeTree(cb)
	if err != nil {
		return Result{}, err
	}
	supp := memlist.EncodeSupplemental(cb.Registry())
	reqImg, err := memlist.EncodeRequest(req)
	if err != nil {
		return Result{}, err
	}
	return r.RetrieveImages(tree, supp, reqImg)
}

// RetrieveImages runs the routine over pre-encoded images.
func (r *Runner) RetrieveImages(tree, supp, reqImg *memlist.Image) (Result, error) {
	lay := LayoutFor(tree, supp, reqImg)
	cpu := mb32.New(r.prog, lay.MemBytes)
	cpu.Cost = r.costs
	if err := cpu.LoadHalfwords(lay.TreeBase, tree.Words); err != nil {
		return Result{}, err
	}
	if err := cpu.LoadHalfwords(lay.SuppBase, supp.Words); err != nil {
		return Result{}, err
	}
	if err := cpu.LoadHalfwords(lay.ReqBase, reqImg.Words); err != nil {
		return Result{}, err
	}
	cpu.Regs[RegSuppBase] = int32(lay.SuppBase)
	cpu.Regs[RegReqBase] = int32(lay.ReqBase)

	cycles, err := cpu.Run(50_000_000)
	if err != nil {
		return Result{}, err
	}
	if cpu.Regs[RegError] != 0 {
		return Result{Cycles: cycles}, fmt.Errorf("%w (request type %d)", ErrTypeNotFound, reqImg.At(0))
	}
	sim := cpu.Regs[RegBestSim]
	if sim < 0 {
		return Result{Cycles: cycles}, fmt.Errorf("%w (request type %d)", ErrNoImplementations, reqImg.At(0))
	}
	return Result{
		ImplID:       uint16(cpu.Regs[RegBestID]),
		Sim:          fixed.Q15(sim),
		Cycles:       cycles,
		Instructions: cpu.Stats.Retired,
	}, nil
}
