package swret

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/hwsim"
	"qosalloc/internal/mb32"
	"qosalloc/internal/memlist"
	"qosalloc/internal/retrieval"
)

func TestSoftwareTableOne(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	res, err := r.Retrieve(cb, casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.ImplID != 2 {
		t.Errorf("software best = %d, want DSP (2)", res.ImplID)
	}
	if math.Abs(res.Sim.Float()-0.96) > 0.01 {
		t.Errorf("software S = %v, want ≈0.96", res.Sim.Float())
	}
	t.Logf("paper example: %d cycles, %d instructions, S=%.4f",
		res.Cycles, res.Instructions, res.Sim.Float())
}

func TestSoftwareMatchesFixedEngineBitExact(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	fe := retrieval.NewFixedEngine(cb)
	r := NewRunner()
	req := casebase.PaperRequest()
	sw, err := r.Retrieve(cb, req)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fe.Retrieve(req)
	if err != nil {
		t.Fatal(err)
	}
	if sw.ImplID != uint16(ref.Impl) || sw.Sim != ref.Similarity {
		t.Errorf("sw (%d, %d) vs fixed engine (%d, %d)", sw.ImplID, sw.Sim, ref.Impl, ref.Similarity)
	}
}

func TestSoftwareErrorPaths(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	r := NewRunner()
	bad := casebase.NewRequest(99, casebase.Constraint{ID: 1, Value: 16, Weight: 1})
	if _, err := r.Retrieve(cb, bad); err == nil {
		t.Error("unknown type must error (validation)")
	}
}

func TestSoftwareTypeNotFoundInImage(t *testing.T) {
	// Corrupt the request image to exercise the routine's own error
	// path, past Go-side validation.
	cb, _ := casebase.PaperCaseBase()
	r := NewRunner()
	tree, supp, reqImg := mustImages(t, cb)
	reqImg.Words[0] = 77
	_, err := r.RetrieveImages(tree, supp, reqImg)
	if err == nil {
		t.Fatal("type-not-found must surface from the routine")
	}
	if !errors.Is(err, ErrTypeNotFound) {
		t.Errorf("error %v does not wrap ErrTypeNotFound", err)
	}
	if errors.Is(err, ErrNoImplementations) {
		t.Errorf("error %v wrongly wraps ErrNoImplementations", err)
	}
}

func TestCodeFootprint(t *testing.T) {
	r := NewRunner()
	// §4.2: the C version took 1984 bytes of opcode. Hand-written
	// assembly is tighter; sanity-bound it.
	if r.CodeBytes() < 100 || r.CodeBytes() > 1984 {
		t.Errorf("code bytes = %d, expected (0, 1984]", r.CodeBytes())
	}
	if r.Instructions()*4 != r.CodeBytes() {
		t.Error("CodeBytes must be 4× instruction count")
	}
	t.Logf("code: %d bytes (%d instructions)", r.CodeBytes(), r.Instructions())
}

func TestLayout(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	tree, supp, reqImg := mustImages(t, cb)
	lay := LayoutFor(tree, supp, reqImg)
	if lay.SuppBase != tree.Size() {
		t.Errorf("supp base = %d, want %d", lay.SuppBase, tree.Size())
	}
	if lay.ReqBase%4 != 0 {
		t.Error("request base must be word-aligned")
	}
	if lay.DataBytes != tree.Size()+supp.Size()+reqImg.Size() {
		t.Errorf("data bytes = %d", lay.DataBytes)
	}
	if lay.MemBytes <= lay.ReqBase+reqImg.Size() {
		t.Error("memory must cover all images")
	}
}

// TestThreeWayAgreement: hardware unit, software routine and fixed-point
// engine agree bit-exactly across randomized case bases — the §4.2
// "identical retrieval and similarity results for a selected set of test
// cases" claim, strengthened to randomized inputs.
func TestThreeWayAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	runner := NewRunner()
	for trial := 0; trial < 40; trial++ {
		cb, reg := randomCaseBase(r, 1+r.Intn(3), 1+r.Intn(8), 1+r.Intn(6), 8)
		req := randomRequest(r, cb, reg, 1+r.Intn(5))
		fe := retrieval.NewFixedEngine(cb)
		ref, err := fe.Retrieve(req)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := runner.Retrieve(cb, req)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		hw, err := hwsim.Retrieve(cb, req, hwsim.Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sw.ImplID != uint16(ref.Impl) || sw.Sim != ref.Similarity {
			t.Errorf("trial %d: sw (%d,%d) vs engine (%d,%d)",
				trial, sw.ImplID, sw.Sim, ref.Impl, ref.Similarity)
		}
		if hw.ImplID != sw.ImplID || hw.Sim != sw.Sim {
			t.Errorf("trial %d: hw (%d,%d) vs sw (%d,%d)",
				trial, hw.ImplID, hw.Sim, sw.ImplID, sw.Sim)
		}
	}
}

// TestSpeedupShape: at the same clock the hardware unit beats the
// software routine by roughly the paper's factor (§4.2 reports ≈8.5×).
func TestSpeedupShape(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	req := casebase.PaperRequest()
	runner := NewRunner()
	sw, err := runner.Retrieve(cb, req)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := hwsim.Retrieve(cb, req, hwsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(sw.Cycles) / float64(hw.Cycles)
	t.Logf("speedup at equal clock: %.2fx (sw %d cycles, hw %d cycles)",
		speedup, sw.Cycles, hw.Cycles)
	if speedup < 3 || speedup > 30 {
		t.Errorf("speedup %.2fx outside the plausible band around the paper's 8.5x", speedup)
	}
}

// --- helpers (mirrors the hwsim test generator) -----------------------

func mustImages(t *testing.T, cb *casebase.CaseBase) (tree, supp, req *memlist.Image) {
	t.Helper()
	tr, err := memlist.EncodeTree(cb)
	if err != nil {
		t.Fatal(err)
	}
	sp := memlist.EncodeSupplemental(cb.Registry())
	rq, err := memlist.EncodeRequest(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	return tr, sp, rq
}

func randomCaseBase(r *rand.Rand, nTypes, implsPer, attrsPer, attrUniverse int) (*casebase.CaseBase, *attr.Registry) {
	reg := attr.NewRegistry()
	for i := 1; i <= attrUniverse; i++ {
		lo := attr.Value(r.Intn(50))
		hi := lo + attr.Value(1+r.Intn(200))
		reg.MustDefine(attr.Def{ID: attr.ID(i), Name: "a", Lo: lo, Hi: hi})
	}
	if attrsPer > attrUniverse {
		attrsPer = attrUniverse
	}
	b := casebase.NewBuilder(reg)
	for ti := 1; ti <= nTypes; ti++ {
		b.AddType(casebase.TypeID(ti), "t")
		for ii := 1; ii <= implsPer; ii++ {
			perm := r.Perm(attrUniverse)[:attrsPer]
			var ps []attr.Pair
			for _, ai := range perm {
				d, _ := reg.Lookup(attr.ID(ai + 1))
				v := d.Lo + attr.Value(r.Intn(int(d.Hi-d.Lo)+1))
				ps = append(ps, attr.Pair{ID: d.ID, Value: v})
			}
			b.AddImpl(casebase.TypeID(ti), casebase.Implementation{ID: casebase.ImplID(ii), Attrs: ps})
		}
	}
	cb, err := b.Build()
	if err != nil {
		panic(err)
	}
	return cb, reg
}

func randomRequest(r *rand.Rand, cb *casebase.CaseBase, reg *attr.Registry, nConstraints int) casebase.Request {
	types := cb.Types()
	ft := types[r.Intn(len(types))]
	ids := reg.IDs()
	if nConstraints > len(ids) {
		nConstraints = len(ids)
	}
	perm := r.Perm(len(ids))[:nConstraints]
	var cs []casebase.Constraint
	for _, i := range perm {
		d, _ := reg.Lookup(ids[i])
		v := d.Lo + attr.Value(r.Intn(int(d.Hi-d.Lo)+1))
		cs = append(cs, casebase.Constraint{ID: d.ID, Value: v})
	}
	return casebase.NewRequest(ft.ID, cs...).EqualWeights()
}

func TestSoftwareNoImplementations(t *testing.T) {
	// A hand-crafted tree whose type 1 has an empty implementation
	// sub-list: the routine must report "no implementations" (best
	// stays -1) rather than fabricating a result.
	r := NewRunner()
	tree := &memlist.Image{Words: []uint16{
		1, 3, // type 1 → impl list at word 3
		memlist.EndMarker, // end of type list
		memlist.EndMarker, // empty impl list
	}}
	supp := &memlist.Image{Words: []uint16{memlist.EndMarker}}
	reqImg := &memlist.Image{Words: []uint16{1, memlist.EndMarker}}
	_, err := r.RetrieveImages(tree, supp, reqImg)
	if err == nil {
		t.Fatal("empty implementation list must error")
	}
	if !errors.Is(err, ErrNoImplementations) {
		t.Errorf("error %v does not wrap ErrNoImplementations", err)
	}
}

func TestSourceAssembles(t *testing.T) {
	// The published routine must assemble from scratch (guards against
	// drift between Source and the assembler grammar).
	if len(mb32.MustAssemble(Source)) == 0 {
		t.Fatal("empty program")
	}
}
