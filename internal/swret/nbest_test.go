package swret

import (
	"math/rand"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/retrieval"
)

func TestSWNBestPaperExample(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	res, err := r.RetrieveN(cb, casebase.PaperRequest(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(res.Entries))
	}
	wantIDs := []uint16{2, 1, 3} // Table 1 order
	for i, w := range wantIDs {
		if res.Entries[i].ImplID != w {
			t.Errorf("entry %d = impl %d, want %d", i, res.Entries[i].ImplID, w)
		}
	}
	for i := 1; i < len(res.Entries); i++ {
		if res.Entries[i].Sim > res.Entries[i-1].Sim {
			t.Error("entries must be descending")
		}
	}
}

func TestSWNBestTruncatesToN(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	r := NewRunner()
	res, err := r.RetrieveN(cb, casebase.PaperRequest(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	if res.Entries[0].ImplID != 2 || res.Entries[1].ImplID != 1 {
		t.Errorf("top-2 = %+v", res.Entries)
	}
	// n larger than the sub-list delivers everything.
	res5, err := r.RetrieveN(cb, casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res5.Entries) != 3 {
		t.Errorf("n=5 entries = %d, want 3", len(res5.Entries))
	}
}

func TestSWNBestValidation(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	r := NewRunner()
	if _, err := r.RetrieveN(cb, casebase.PaperRequest(), 0); err == nil {
		t.Error("n=0 must fail")
	}
	bad := casebase.NewRequest(99, casebase.Constraint{ID: 1, Value: 16, Weight: 1})
	if _, err := r.RetrieveN(cb, bad, 3); err == nil {
		t.Error("invalid request must fail")
	}
}

func TestSWNBestAgreesWithSingleBest(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	r := NewRunner()
	single, err := r.Retrieve(cb, casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	nb, err := r.RetrieveN(cb, casebase.PaperRequest(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Entries[0].ImplID != single.ImplID || nb.Entries[0].Sim != single.Sim {
		t.Errorf("n=1 (%+v) disagrees with single-best (%+v)", nb.Entries[0], single)
	}
}

// TestSWNBestMatchesFixedEngine is the cross-implementation property:
// the assembly insertion sort must reproduce the fixed engine's
// RetrieveN exactly, including tie ordering, across randomized inputs.
func TestSWNBestMatchesFixedEngine(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	runner := NewRunner()
	for trial := 0; trial < 40; trial++ {
		cb, reg := randomCaseBase(r, 2, 2+r.Intn(8), 1+r.Intn(5), 8)
		req := randomRequest(r, cb, reg, 1+r.Intn(4))
		n := 1 + r.Intn(6)
		fe := retrieval.NewFixedEngine(cb)
		want, err := fe.RetrieveN(req, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := runner.RetrieveN(cb, req, n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got.Entries) != len(want) {
			t.Fatalf("trial %d: %d entries, engine %d", trial, len(got.Entries), len(want))
		}
		for i := range want {
			if got.Entries[i].ImplID != uint16(want[i].Impl) || got.Entries[i].Sim != want[i].Similarity {
				t.Errorf("trial %d entry %d: sw (%d, %d) vs engine (%d, %d)",
					trial, i, got.Entries[i].ImplID, got.Entries[i].Sim,
					want[i].Impl, want[i].Similarity)
			}
		}
	}
}

func TestSWNBestCodeFootprint(t *testing.T) {
	if NBestCodeBytes() <= NewRunner().CodeBytes() {
		t.Error("n-best kernel should be larger than the single-best kernel")
	}
	if NBestCodeBytes() > 1984 {
		t.Errorf("n-best kernel %d bytes exceeds the paper's C footprint", NBestCodeBytes())
	}
}
