package swret

import (
	"fmt"

	"qosalloc/internal/casebase"
	"qosalloc/internal/fixed"
	"qosalloc/internal/mb32"
	"qosalloc/internal/memlist"
)

// Additional register conventions of the n-best routine.
const (
	// RegNBestBase (input): byte address of the result array
	// (n entries of two halfwords: similarity, implementation ID).
	RegNBestBase = 26
	// RegNBestN (input): requested list length n.
	RegNBestN = 27
	// RegNBestCount (output): number of valid entries delivered.
	RegNBestCount = 28
)

// SourceNBest is the §5 n-most-similar retrieval in software: identical
// scoring to Source, but instead of a single running best it maintains a
// descending-sorted array of the n best (similarity, ID) pairs with an
// insertion scan and a shift loop — the same data structure the hardware
// extension keeps in its register file. The implementation-list scan
// pointer lives in r29 here because r5 and r7 double as insertion-scan
// scratch after the type search finishes.
const SourceNBest = `
; QoS retrieval, n most similar variants (§5 extension).
; inputs:  r20 = supplemental base, r21 = request base,
;          r26 = result array base, r27 = n
; outputs: r28 = delivered count, result array sorted best-first,
;          r25 = error (0 ok, 1 type not found)
start:
	lhu  r3, r21, 0          ; requested function type
	addi r5, r0, 0           ; tp = tree base
	addi r24, r0, 32767      ; Q15 one
	addi r28, r0, 0          ; count = 0
typescan:
	lhu  r6, r5, 0
	beqz r6, notfound
	sub  r22, r6, r3
	beqz r22, typefound
	addi r5, r5, 4
	br   typescan
typefound:
	lhu  r29, r5, 2          ; implementation list pointer (words)
	add  r29, r29, r29       ; bytes
implscan:
	lhu  r12, r29, 0         ; implementation ID
	beqz r12, done
	lhu  r8, r29, 2          ; attribute list pointer (words)
	add  r8, r8, r8
	add  r9, r8, r0          ; cp
	add  r10, r20, r0        ; sp
	addi r11, r21, 2         ; rp
	addi r17, r0, 0          ; acc
reqattr:
	lhu  r13, r11, 0
	beqz r13, insbegin       ; all attributes scored: insert into array
	lhu  r14, r11, 2
	lhu  r23, r11, 4
suppscan:
	lhu  r6, r10, 0
	beqz r6, nextattr
	sub  r22, r6, r13
	beqz r22, suppfound
	bgtz r22, nextattr
	addi r10, r10, 8
	br   suppscan
suppfound:
	lhu  r16, r10, 6
cbscan:
	lhu  r6, r9, 0
	beqz r6, nextattr
	sub  r22, r6, r13
	beqz r22, cbfound
	bgtz r22, nextattr
	addi r9, r9, 4
	br   cbscan
cbfound:
	lhu  r6, r9, 2
	addi r9, r9, 4
	sub  r22, r14, r6
	bgez r22, absok
	sub  r22, r6, r14
absok:
	mul  r22, r22, r16
	srli r22, r22, 1
	sub  r22, r24, r22
	bgez r22, sok
	addi r22, r0, 0
sok:
	mul  r22, r22, r23
	srli r22, r22, 15
	add  r17, r17, r22
	sub  r22, r24, r17
	bgez r22, nextattr
	add  r17, r24, r0
nextattr:
	addi r11, r11, 6
	br   reqattr

; ---- sorted insertion into the result array --------------------------
insbegin:
	addi r5, r0, 0           ; i = 0
	add  r4, r26, r0         ; p = &entry[0]
insscan:
	sub  r22, r5, r28        ; i - count
	bgez r22, insert         ; i == count: append position found
	lhu  r6, r4, 0           ; entry[i].sim
	sub  r22, r17, r6        ; acc - sim
	bgtz r22, insert         ; strictly better: insert at i
	addi r5, r5, 1
	addi r4, r4, 4
	br   insscan
insert:
	sub  r22, r5, r27        ; i - n
	bgez r22, nextimpl       ; i >= n: does not qualify
	add  r7, r28, r0         ; j = min(count, n-1): last slot to fill
	sub  r22, r7, r27
	bltz r22, shiftloop
	addi r7, r27, -1
shiftloop:
	sub  r22, r7, r5         ; while j > i: entry[j] = entry[j-1]
	blez r22, store
	slli r22, r7, 2
	add  r22, r26, r22       ; &entry[j]
	lhu  r6, r22, -4
	sh   r6, r22, 0
	lhu  r6, r22, -2
	sh   r6, r22, 2
	addi r7, r7, -1
	br   shiftloop
store:
	slli r22, r5, 2
	add  r22, r26, r22
	sh   r17, r22, 0         ; similarity
	sh   r12, r22, 2         ; implementation ID
	addi r28, r28, 1         ; count = min(count+1, n)
	sub  r22, r28, r27
	blez r22, nextimpl
	add  r28, r27, r0
nextimpl:
	addi r29, r29, 4
	br   implscan
done:
	addi r25, r0, 0
	halt
notfound:
	addi r25, r0, 1
	halt
`

// nbestProgram is the assembled routine, built once.
var nbestProgram = mb32.MustAssemble(SourceNBest)

// NBestEntry is one delivered result.
type NBestEntry struct {
	ImplID uint16
	Sim    fixed.Q15
}

// NBestResult is the n-best routine's outcome.
type NBestResult struct {
	Entries      []NBestEntry
	Cycles       uint64
	Instructions uint64
}

// NBestCodeBytes returns the n-best routine's opcode size, for the
// footprint comparison against the single-best kernel.
func NBestCodeBytes() int { return 4 * len(nbestProgram) }

// RetrieveN runs the software n-best retrieval: the up-to-n most
// similar implementations of the requested type, best first.
func (r *Runner) RetrieveN(cb *casebase.CaseBase, req casebase.Request, n int) (NBestResult, error) {
	if n <= 0 {
		return NBestResult{}, fmt.Errorf("swret: n must be positive, got %d", n)
	}
	if err := req.Validate(cb); err != nil {
		return NBestResult{}, err
	}
	tree, err := memlist.EncodeTree(cb)
	if err != nil {
		return NBestResult{}, err
	}
	supp := memlist.EncodeSupplemental(cb.Registry())
	reqImg, err := memlist.EncodeRequest(req)
	if err != nil {
		return NBestResult{}, err
	}

	lay := LayoutFor(tree, supp, reqImg)
	arrayBase := align4(lay.ReqBase + reqImg.Size())
	memBytes := arrayBase + 4*n + 64
	cpu := mb32.New(nbestProgram, memBytes)
	cpu.Cost = r.costs
	if err := cpu.LoadHalfwords(lay.TreeBase, tree.Words); err != nil {
		return NBestResult{}, err
	}
	if err := cpu.LoadHalfwords(lay.SuppBase, supp.Words); err != nil {
		return NBestResult{}, err
	}
	if err := cpu.LoadHalfwords(lay.ReqBase, reqImg.Words); err != nil {
		return NBestResult{}, err
	}
	cpu.Regs[RegSuppBase] = int32(lay.SuppBase)
	cpu.Regs[RegReqBase] = int32(lay.ReqBase)
	cpu.Regs[RegNBestBase] = int32(arrayBase)
	cpu.Regs[RegNBestN] = int32(n)

	cycles, err := cpu.Run(50_000_000)
	if err != nil {
		return NBestResult{}, err
	}
	if cpu.Regs[RegError] != 0 {
		return NBestResult{Cycles: cycles}, fmt.Errorf("swret: requested type not found in case base")
	}
	count := int(cpu.Regs[RegNBestCount])
	out := NBestResult{Cycles: cycles, Instructions: cpu.Stats.Retired}
	for i := 0; i < count; i++ {
		a := arrayBase + 4*i
		sim := uint16(cpu.Mem[a]) | uint16(cpu.Mem[a+1])<<8
		id := uint16(cpu.Mem[a+2]) | uint16(cpu.Mem[a+3])<<8
		out.Entries = append(out.Entries, NBestEntry{ImplID: id, Sim: fixed.Q15(sim)})
	}
	return out, nil
}
