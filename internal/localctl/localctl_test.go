package localctl

import (
	"strings"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
)

func testFPGA() *device.FPGA {
	return device.NewFPGA("fpga0", []device.Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
}

var testFoot = casebase.Footprint{Slices: 900, ConfigBytes: 6600, PowerMW: 300} // 100us reconfig

func TestConfigureCompletesAfterLatency(t *testing.T) {
	c := New(testFPGA(), 50)
	c.Send(Command{Op: OpConfigure, Task: 1, Type: 1, Impl: 1, Foot: testFoot})
	// Before the command latency elapses, nothing happens.
	if err := c.AdvanceTo(49); err != nil {
		t.Fatal(err)
	}
	if len(c.Drain()) != 0 {
		t.Fatal("command completed too early")
	}
	if c.QueueDepth() != 1 {
		t.Fatal("command must still be queued")
	}
	if err := c.AdvanceTo(50); err != nil {
		t.Fatal(err)
	}
	evs := c.Drain()
	if len(evs) != 1 || evs[0].Kind != EvConfigured || evs[0].Task != 1 {
		t.Fatalf("events = %+v", evs)
	}
	// Device place happened at t=50; reconfiguration adds 100us.
	if evs[0].Ready != 150 {
		t.Errorf("ready = %d, want 150", evs[0].Ready)
	}
	if c.QueueDepth() != 0 {
		t.Error("queue must drain")
	}
}

func TestCommandsSerializeThroughOneCore(t *testing.T) {
	fpga := device.NewFPGA("f", []device.Slot{
		{Slices: 1500}, {Slices: 1500},
	}, 66)
	c := New(fpga, 100)
	small := casebase.Footprint{Slices: 100, ConfigBytes: 660}
	c.Send(Command{Op: OpConfigure, Task: 1, Foot: small, Type: 1, Impl: 1})
	c.Send(Command{Op: OpConfigure, Task: 2, Foot: small, Type: 1, Impl: 2})
	if err := c.AdvanceTo(150); err != nil {
		t.Fatal(err)
	}
	// Only the first command (service 0→100) has completed.
	if evs := c.Drain(); len(evs) != 1 || evs[0].Task != 1 {
		t.Fatalf("events at t=150: %+v", evs)
	}
	if err := c.AdvanceTo(200); err != nil {
		t.Fatal(err)
	}
	evs := c.Drain()
	if len(evs) != 1 || evs[0].Task != 2 || evs[0].At != 200 {
		t.Fatalf("second completion = %+v", evs)
	}
}

func TestRemoveAndQuery(t *testing.T) {
	c := New(testFPGA(), 10)
	c.Send(Command{Op: OpConfigure, Task: 1, Type: 1, Impl: 1, Foot: testFoot})
	c.Send(Command{Op: OpQuery})
	c.Send(Command{Op: OpRemove, Task: 1})
	c.Send(Command{Op: OpQuery})
	if err := c.AdvanceTo(1000); err != nil {
		t.Fatal(err)
	}
	evs := c.Drain()
	if len(evs) != 4 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[1].Kind != EvStatus || evs[1].Load != 1 || evs[1].Power != 300 {
		t.Errorf("status after configure = %+v", evs[1])
	}
	if evs[2].Kind != EvRemoved {
		t.Errorf("remove event = %+v", evs[2])
	}
	if evs[3].Kind != EvStatus || evs[3].Load != 0 || evs[3].Power != 0 {
		t.Errorf("status after remove = %+v", evs[3])
	}
}

func TestErrorsSurfaceAsEvents(t *testing.T) {
	c := New(testFPGA(), 1)
	// Removing a task that does not exist.
	c.Send(Command{Op: OpRemove, Task: 42})
	// Configuring beyond capacity.
	c.Send(Command{Op: OpConfigure, Task: 1, Type: 1, Impl: 1, Foot: testFoot})
	c.Send(Command{Op: OpConfigure, Task: 2, Type: 1, Impl: 2, Foot: testFoot})
	if err := c.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	evs := c.Drain()
	if len(evs) != 3 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Kind != EvError || !strings.Contains(evs[0].Err, "not on") {
		t.Errorf("remove error = %+v", evs[0])
	}
	if evs[1].Kind != EvConfigured {
		t.Errorf("first configure = %+v", evs[1])
	}
	if evs[2].Kind != EvError || !strings.Contains(evs[2].Err, "no free slot") {
		t.Errorf("overflow configure = %+v", evs[2])
	}
}

func TestClockGuard(t *testing.T) {
	c := New(testFPGA(), 1)
	if err := c.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if err := c.AdvanceTo(5); err == nil {
		t.Error("rewind must fail")
	}
	if c.Now() != 10 {
		t.Error("failed rewind moved the clock")
	}
}

func TestOpAndEventStrings(t *testing.T) {
	for _, s := range []string{OpConfigure.String(), OpRemove.String(), OpQuery.String(),
		EvConfigured.String(), EvRemoved.String(), EvStatus.String(), EvError.String()} {
		if s == "" || strings.HasPrefix(s, "Op(") || strings.HasPrefix(s, "EventKind(") {
			t.Errorf("bad name %q", s)
		}
	}
	if !strings.Contains(Op(9).String(), "9") || !strings.Contains(EventKind(9).String(), "9") {
		t.Error("unknown values should render numerically")
	}
}

func TestUnknownCommandRejected(t *testing.T) {
	c := New(testFPGA(), 1)
	c.Send(Command{Op: Op(99), Task: 7})
	if err := c.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	evs := c.Drain()
	if len(evs) != 1 || evs[0].Kind != EvError {
		t.Fatalf("events = %+v", evs)
	}
}
