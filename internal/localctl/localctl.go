// Package localctl models the paper's "Local Run-Time Control" blocks
// (fig. 1): the per-device controllers — "located on different devices
// (e.g. standard CPU, FPGA (soft-core CPU) or DSP)" — that are
// "responsible for the control of local run-time reconfiguration and
// other sub-tasks like local task/resource management and communication
// issues" (§1).
//
// A Controller owns one device and consumes a command mailbox: configure
// an implementation into local capacity, start/stop it, report status.
// Commands incur a processing latency (the soft-core handling the
// message) on top of the device's own reconfiguration time, and complete
// asynchronously: the controller posts Events to its outbox as the
// simulated clock advances. This is the communication fabric the
// HW-Layer API rides on; the centralized rtsys model used by the
// allocation manager is its synchronous abstraction.
package localctl

import (
	"fmt"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
)

// Op is a command opcode.
type Op uint8

// Controller commands.
const (
	// OpConfigure loads an implementation into local capacity.
	OpConfigure Op = iota
	// OpRemove releases a previously configured implementation.
	OpRemove
	// OpQuery requests a status event without changing state.
	OpQuery
)

// String returns the command name.
func (o Op) String() string {
	switch o {
	case OpConfigure:
		return "configure"
	case OpRemove:
		return "remove"
	case OpQuery:
		return "query"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Command is one mailbox entry.
type Command struct {
	Op   Op
	Task int
	Type casebase.TypeID
	Impl casebase.ImplID
	Foot casebase.Footprint
	Prio int
}

// EventKind classifies controller events.
type EventKind uint8

// Event kinds.
const (
	// EvConfigured reports a completed configuration (Ready carries
	// when the function becomes usable).
	EvConfigured EventKind = iota
	// EvRemoved reports a completed removal.
	EvRemoved
	// EvStatus reports a query response.
	EvStatus
	// EvError reports a rejected command.
	EvError
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EvConfigured:
		return "configured"
	case EvRemoved:
		return "removed"
	case EvStatus:
		return "status"
	case EvError:
		return "error"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one outbox entry.
type Event struct {
	Kind  EventKind
	At    device.Micros // when the event was emitted
	Task  int
	Ready device.Micros // EvConfigured: when the function is usable
	Load  int           // EvStatus: live placements
	Power int           // EvStatus: device power, mW
	Err   string        // EvError: reason
}

// Controller is one local run-time control instance.
type Controller struct {
	dev device.Device
	// CommandLatency models the local soft-core's message handling
	// time per command.
	CommandLatency device.Micros

	now     device.Micros
	busyTil device.Micros
	inbox   []pendingCmd
	outbox  []Event
}

type pendingCmd struct {
	cmd     Command
	startAt device.Micros // when processing may begin
}

// New returns a controller over dev with the given per-command
// processing latency.
func New(dev device.Device, commandLatency device.Micros) *Controller {
	return &Controller{dev: dev, CommandLatency: commandLatency}
}

// Device returns the controlled device.
func (c *Controller) Device() device.Device { return c.dev }

// Now returns the controller's local clock.
func (c *Controller) Now() device.Micros { return c.now }

// QueueDepth returns the number of unprocessed commands.
func (c *Controller) QueueDepth() int { return len(c.inbox) }

// Send enqueues a command at the current local time.
func (c *Controller) Send(cmd Command) {
	c.inbox = append(c.inbox, pendingCmd{cmd: cmd, startAt: c.now})
}

// Drain returns and clears the accumulated events.
func (c *Controller) Drain() []Event {
	out := c.outbox
	c.outbox = nil
	return out
}

// AdvanceTo moves the local clock forward, processing every command
// whose service time (queueing + command latency) has elapsed. Commands
// are handled strictly in order — the controller is a single soft core.
func (c *Controller) AdvanceTo(t device.Micros) error {
	if t < c.now {
		return fmt.Errorf("localctl: cannot rewind clock from %d to %d", c.now, t)
	}
	c.now = t
	for len(c.inbox) > 0 {
		p := c.inbox[0]
		start := p.startAt
		if c.busyTil > start {
			start = c.busyTil
		}
		done := start + c.CommandLatency
		if done > c.now {
			return nil // head of queue still in service
		}
		c.busyTil = done
		c.inbox = c.inbox[1:]
		c.execute(p.cmd, done)
	}
	return nil
}

// execute performs one command at its completion time.
func (c *Controller) execute(cmd Command, at device.Micros) {
	switch cmd.Op {
	case OpConfigure:
		pl, err := c.dev.Place(cmd.Task, cmd.Type, cmd.Impl, cmd.Foot, cmd.Prio, at)
		if err != nil {
			c.outbox = append(c.outbox, Event{Kind: EvError, At: at, Task: cmd.Task, Err: err.Error()})
			return
		}
		c.outbox = append(c.outbox, Event{Kind: EvConfigured, At: at, Task: cmd.Task, Ready: pl.Ready})
	case OpRemove:
		if err := c.dev.Remove(cmd.Task); err != nil {
			c.outbox = append(c.outbox, Event{Kind: EvError, At: at, Task: cmd.Task, Err: err.Error()})
			return
		}
		c.outbox = append(c.outbox, Event{Kind: EvRemoved, At: at, Task: cmd.Task})
	case OpQuery:
		c.outbox = append(c.outbox, Event{
			Kind: EvStatus, At: at,
			Load: len(c.dev.Placements()), Power: c.dev.PowerMW(),
		})
	default:
		c.outbox = append(c.outbox, Event{Kind: EvError, At: at, Task: cmd.Task,
			Err: fmt.Sprintf("unknown command %v", cmd.Op)})
	}
}
