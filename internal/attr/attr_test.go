package attr

import (
	"strings"
	"testing"
	"testing/quick"
)

func paperRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	// The §3 FIR-equalizer attribute vocabulary with the Table 1 dmax
	// values: bitwidth dmax=8, output-mode dmax=2, sample-rate dmax=36.
	r.MustDefine(Def{ID: 1, Name: "bitwidth", Unit: "bits", Kind: Numeric, Lo: 8, Hi: 16})
	r.MustDefine(Def{ID: 2, Name: "proc-mode", Kind: Flag, Lo: 0, Hi: 1, Symbols: []string{"integer", "float"}})
	r.MustDefine(Def{ID: 3, Name: "output-mode", Kind: Ordinal, Lo: 0, Hi: 2, Symbols: []string{"mono", "stereo", "surround"}})
	r.MustDefine(Def{ID: 4, Name: "sample-rate", Unit: "kS/s", Kind: Numeric, Lo: 8, Hi: 44})
	return r
}

func TestPaperDMaxValues(t *testing.T) {
	r := paperRegistry(t)
	want := map[ID]uint16{1: 8, 2: 1, 3: 2, 4: 36}
	for id, dm := range want {
		got, err := r.DMax(id)
		if err != nil {
			t.Fatalf("DMax(%d): %v", id, err)
		}
		if got != dm {
			t.Errorf("DMax(%d) = %d, want %d (Table 1)", id, got, dm)
		}
	}
}

func TestDefineRejectsReservedIDs(t *testing.T) {
	r := NewRegistry()
	if err := r.Define(Def{ID: 0, Name: "bad"}); err == nil {
		t.Error("ID 0 must be rejected (list terminator)")
	}
	if err := r.Define(Def{ID: 0xFFFF, Name: "bad"}); err == nil {
		t.Error("ID 0xFFFF must be rejected (list terminator)")
	}
}

func TestDefineRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	r.MustDefine(Def{ID: 7, Name: "a", Lo: 0, Hi: 1})
	if err := r.Define(Def{ID: 7, Name: "b", Lo: 0, Hi: 1}); err == nil {
		t.Error("duplicate ID must be rejected")
	}
}

func TestDefineRejectsInvertedBounds(t *testing.T) {
	r := NewRegistry()
	if err := r.Define(Def{ID: 3, Name: "x", Lo: 10, Hi: 2}); err == nil {
		t.Error("inverted bounds must be rejected")
	}
}

func TestDefineRejectsBadSymbolCount(t *testing.T) {
	r := NewRegistry()
	err := r.Define(Def{ID: 3, Name: "x", Lo: 0, Hi: 2, Symbols: []string{"only-one"}})
	if err == nil {
		t.Error("mismatched symbol table must be rejected")
	}
}

func TestSealPreventsDefine(t *testing.T) {
	r := NewRegistry()
	r.MustDefine(Def{ID: 1, Name: "a", Lo: 0, Hi: 1})
	r.Seal()
	if !r.Sealed() {
		t.Error("Sealed() should be true")
	}
	if err := r.Define(Def{ID: 2, Name: "b", Lo: 0, Hi: 1}); err == nil {
		t.Error("Define after Seal must fail")
	}
}

func TestValidate(t *testing.T) {
	r := paperRegistry(t)
	if err := r.Validate(Pair{ID: 1, Value: 16}); err != nil {
		t.Errorf("valid pair rejected: %v", err)
	}
	if err := r.Validate(Pair{ID: 1, Value: 32}); err == nil {
		t.Error("out-of-bounds value must be rejected")
	}
	if err := r.Validate(Pair{ID: 99, Value: 0}); err == nil {
		t.Error("unknown ID must be rejected")
	}
}

func TestIDsAscending(t *testing.T) {
	r := NewRegistry()
	for _, id := range []ID{40, 3, 17, 9} {
		r.MustDefine(Def{ID: id, Name: "x", Lo: 0, Hi: 1})
	}
	ids := r.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("IDs() not ascending: %v", ids)
		}
	}
	if len(ids) != 4 {
		t.Fatalf("len(IDs()) = %d", len(ids))
	}
}

func TestSymbolFor(t *testing.T) {
	r := paperRegistry(t)
	d, _ := r.Lookup(3)
	if got := d.SymbolFor(1); got != "stereo" {
		t.Errorf("SymbolFor(1) = %q, want stereo", got)
	}
	d, _ = r.Lookup(4)
	if got := d.SymbolFor(44); !strings.Contains(got, "44") || !strings.Contains(got, "kS/s") {
		t.Errorf("SymbolFor(44) = %q", got)
	}
	d, _ = r.Lookup(3)
	if got := d.SymbolFor(9); got != "9" {
		t.Errorf("out-of-table symbol = %q, want numeric fallback", got)
	}
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Ordinal.String() != "ordinal" || Flag.String() != "flag" {
		t.Error("Kind.String basic names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown Kind should render its number")
	}
}

func TestSortPairsAndCheckSorted(t *testing.T) {
	ps := []Pair{{ID: 4, Value: 40}, {ID: 1, Value: 16}, {ID: 3, Value: 1}}
	if err := CheckSorted(ps); err == nil {
		t.Error("unsorted pairs must fail CheckSorted")
	}
	SortPairs(ps)
	if err := CheckSorted(ps); err != nil {
		t.Errorf("sorted pairs rejected: %v", err)
	}
	if ps[0].ID != 1 || ps[2].ID != 4 {
		t.Errorf("SortPairs order wrong: %v", ps)
	}
	// Duplicates rejected.
	dup := []Pair{{ID: 2, Value: 0}, {ID: 2, Value: 1}}
	if err := CheckSorted(dup); err == nil {
		t.Error("duplicate IDs must fail CheckSorted")
	}
}

// Property: SortPairs output always passes CheckSorted when IDs are unique.
func TestSortPairsProperty(t *testing.T) {
	f := func(ids []uint16) bool {
		seen := map[uint16]bool{}
		var ps []Pair
		for _, id := range ids {
			if id == 0 || seen[id] {
				continue
			}
			seen[id] = true
			ps = append(ps, Pair{ID: ID(id), Value: Value(id)})
		}
		SortPairs(ps)
		return CheckSorted(ps) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByName(t *testing.T) {
	r := paperRegistry(t)
	d, ok := r.ByName("sample-rate")
	if !ok || d.ID != 4 {
		t.Errorf("ByName = %+v, %v", d, ok)
	}
	if _, ok := r.ByName("nope"); ok {
		t.Error("unknown name must miss")
	}
	// Duplicate names resolve to the lowest ID.
	dup := NewRegistry()
	dup.MustDefine(Def{ID: 9, Name: "x", Lo: 0, Hi: 1})
	dup.MustDefine(Def{ID: 3, Name: "x", Lo: 0, Hi: 1})
	if d, _ := dup.ByName("x"); d.ID != 3 {
		t.Errorf("duplicate name resolved to %d, want 3", d.ID)
	}
}

func TestParseValue(t *testing.T) {
	r := paperRegistry(t)
	om, _ := r.Lookup(3)
	if v, err := om.ParseValue("stereo"); err != nil || v != 1 {
		t.Errorf("ParseValue(stereo) = %d, %v", v, err)
	}
	if v, err := om.ParseValue("2"); err != nil || v != 2 {
		t.Errorf("ParseValue(2) = %d, %v", v, err)
	}
	sr, _ := r.Lookup(4)
	if v, err := sr.ParseValue("0x2C"); err != nil || v != 44 {
		t.Errorf("ParseValue(0x2C) = %d, %v", v, err)
	}
	if _, err := sr.ParseValue("fast"); err == nil {
		t.Error("non-symbol non-number must fail")
	}
}
