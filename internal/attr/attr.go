// Package attr defines the attribute vocabulary of the QoS function
// allocation system.
//
// The paper (§2.2) describes cases as "sets of simple pairs of attributes
// and their values" whose values "can be of integer/real type, even
// discrete ordered sets of symbols are possible if they can be mapped onto
// integers". Every attribute carries a type ID; attributes of the same ID
// are comparable between a request and an implementation. The
// design-global upper/lower bounds of each attribute type — from which the
// maximum distance dmax of eq. (1) is derived — are kept in a Registry,
// the software analogue of the paper's "extra table ... generated at
// design time containing supplemental data on the attributes'
// design-global upper/lower value bounds" (fig. 4 right).
package attr

import (
	"fmt"
	"sort"
	"strconv"
)

// ID identifies an attribute type system-wide. The hardware encodes IDs
// as 16-bit words, so the valid range is [1, 0xFFFE]; 0 and 0xFFFF are
// reserved as list terminators in the memory image (package memlist).
type ID uint16

// Kind describes how an attribute's integer payload is to be interpreted.
// All kinds are ultimately mapped onto unsigned 16-bit integers for the
// hardware, as the paper requires.
type Kind uint8

const (
	// Numeric attributes are plain magnitudes (bitwidth, kSamples/s,
	// milliwatts, ...). Distance is Manhattan.
	Numeric Kind = iota
	// Ordinal attributes are discrete ordered symbol sets mapped onto
	// consecutive integers (mono=0 < stereo=1 < surround=2). Distance
	// is Manhattan on the mapped integers.
	Ordinal
	// Flag attributes are booleans or unordered mode selectors
	// (integer-mode=0 / float-mode=1). Distance is still Manhattan so
	// the hardware datapath is uniform, but sensible definitions keep
	// the mapped values adjacent.
	Flag
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Ordinal:
		return "ordinal"
	case Flag:
		return "flag"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an attribute payload as the 16-bit datapath sees it.
type Value uint16

// Pair is one attribute instance: a type ID plus a value. Requests and
// implementation descriptions are sets of Pairs.
type Pair struct {
	ID    ID
	Value Value
}

// Def declares an attribute type at design time.
type Def struct {
	ID   ID
	Name string // human-readable, e.g. "bitwidth"
	Unit string // e.g. "bits", "kS/s"; empty for symbolic kinds
	Kind Kind
	// Lo and Hi are the design-global value bounds over all
	// implementations in the library. dmax = Hi - Lo.
	Lo, Hi Value
	// Symbols maps ordinal levels to names, indexed by Value-Lo.
	// Optional; only for Ordinal/Flag kinds.
	Symbols []string
}

// DMax returns the design-global maximum distance of the attribute type,
// the max d(xi,xj) term of eq. (1).
func (d Def) DMax() uint16 {
	return uint16(d.Hi) - uint16(d.Lo)
}

// SymbolFor returns the symbol name for v, or a numeric rendering when no
// symbol table applies.
func (d Def) SymbolFor(v Value) string {
	i := int(v) - int(d.Lo)
	if i >= 0 && i < len(d.Symbols) {
		return d.Symbols[i]
	}
	if d.Unit != "" {
		return fmt.Sprintf("%d %s", v, d.Unit)
	}
	return fmt.Sprintf("%d", v)
}

// Registry is the design-time attribute dictionary: every attribute type
// the function library uses, with its global bounds. It is immutable
// after sealing; the run-time system only reads it.
type Registry struct {
	defs   map[ID]Def
	sealed bool
}

// NewRegistry returns an empty attribute registry.
func NewRegistry() *Registry {
	return &Registry{defs: make(map[ID]Def)}
}

// Define adds an attribute type. It returns an error for reserved or
// duplicate IDs, inverted bounds, or definitions added after Seal.
func (r *Registry) Define(d Def) error {
	if r.sealed {
		return fmt.Errorf("attr: registry is sealed; cannot define %q", d.Name)
	}
	if d.ID == 0 || d.ID == 0xFFFF {
		return fmt.Errorf("attr: ID %d is reserved as a list terminator", d.ID)
	}
	if _, dup := r.defs[d.ID]; dup {
		return fmt.Errorf("attr: duplicate definition of ID %d", d.ID)
	}
	if d.Hi < d.Lo {
		return fmt.Errorf("attr: %q has inverted bounds [%d, %d]", d.Name, d.Lo, d.Hi)
	}
	if len(d.Symbols) > 0 && len(d.Symbols) != int(d.Hi)-int(d.Lo)+1 {
		return fmt.Errorf("attr: %q has %d symbols for range [%d, %d]",
			d.Name, len(d.Symbols), d.Lo, d.Hi)
	}
	r.defs[d.ID] = d
	return nil
}

// MustDefine is Define but panics on error; for design-time tables whose
// correctness is established by tests.
func (r *Registry) MustDefine(d Def) {
	if err := r.Define(d); err != nil {
		panic(err)
	}
}

// Seal freezes the registry. Sealing corresponds to the paper's
// design-time generation of the supplemental data table: after it, dmax
// values are constants the hardware may bake into reciprocals.
func (r *Registry) Seal() { r.sealed = true }

// Sealed reports whether the registry is frozen.
func (r *Registry) Sealed() bool { return r.sealed }

// Lookup returns the definition of id.
func (r *Registry) Lookup(id ID) (Def, bool) {
	d, ok := r.defs[id]
	return d, ok
}

// DMax returns the design-global maximum distance for id, or an error for
// unknown attribute types.
func (r *Registry) DMax(id ID) (uint16, error) {
	d, ok := r.defs[id]
	if !ok {
		return 0, fmt.Errorf("attr: unknown attribute ID %d", id)
	}
	return d.DMax(), nil
}

// Len returns the number of defined attribute types.
func (r *Registry) Len() int { return len(r.defs) }

// ByName returns the definition whose Name matches exactly. Names are a
// human convenience (CLIs, JSON); IDs remain the canonical key, so
// duplicated names resolve to the lowest ID deterministically.
func (r *Registry) ByName(name string) (Def, bool) {
	best := Def{}
	found := false
	for _, d := range r.defs {
		if d.Name != name {
			continue
		}
		if !found || d.ID < best.ID {
			best = d
			found = true
		}
	}
	return best, found
}

// ParseValue interprets s as a value of attribute d: a symbol name when
// the definition has a symbol table, otherwise a decimal/hex integer.
func (d Def) ParseValue(s string) (Value, error) {
	for i, sym := range d.Symbols {
		if sym == s {
			return d.Lo + Value(i), nil
		}
	}
	v, err := strconv.ParseUint(s, 0, 16)
	if err != nil {
		return 0, fmt.Errorf("attr: %q is neither a %s symbol nor a number", s, d.Name)
	}
	return Value(v), nil
}

// IDs returns all defined attribute IDs in ascending order — the order in
// which the supplemental list is emitted (fig. 4: "list entries presorted
// by ID").
func (r *Registry) IDs() []ID {
	ids := make([]ID, 0, len(r.defs))
	for id := range r.defs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Validate checks that a pair's value lies within its type's design-global
// bounds. Out-of-bounds values would make d exceed dmax and the fixed-point
// local similarity clamp to 0, so they are design errors worth surfacing.
func (r *Registry) Validate(p Pair) error {
	d, ok := r.defs[p.ID]
	if !ok {
		return fmt.Errorf("attr: pair references unknown attribute ID %d", p.ID)
	}
	if p.Value < d.Lo || p.Value > d.Hi {
		return fmt.Errorf("attr: %q value %d outside design bounds [%d, %d]",
			d.Name, p.Value, d.Lo, d.Hi)
	}
	return nil
}

// SortPairs sorts pairs in-place by ascending ID, the pre-sorted order all
// of the paper's list structures require (§4.1: "the attribute-blocks have
// to be pre-sorted by their ID in ascending order ... as a consequence the
// effort for searching becomes linear").
func SortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}

// CheckSorted returns an error unless ps is strictly ascending by ID
// (duplicates are also rejected: one value per attribute type per case).
func CheckSorted(ps []Pair) error {
	for i := 1; i < len(ps); i++ {
		if ps[i].ID <= ps[i-1].ID {
			return fmt.Errorf("attr: pairs not strictly ascending at index %d (ID %d after %d)",
				i, ps[i].ID, ps[i-1].ID)
		}
	}
	return nil
}
