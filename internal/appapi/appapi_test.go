package appapi

import (
	"errors"
	"testing"

	"qosalloc/internal/alloc"
	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/rtsys"
)

func manager(t *testing.T, opt alloc.Options) *alloc.Manager {
	t.Helper()
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	repo := device.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		t.Fatal(err)
	}
	fpga := device.NewFPGA("fpga0", []device.Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
	dsp := device.NewProcessor("dsp0", casebase.TargetDSP, 1000, 128*1024)
	gpp := device.NewProcessor("gpp0", casebase.TargetGPP, 1000, 256*1024)
	return alloc.New(cb, rtsys.NewSystem(repo, fpga, dsp, gpp), opt)
}

func TestCallPlacesDirectly(t *testing.T) {
	m := manager(t, alloc.Options{})
	s := NewSession(m, "mp3", 5, Options{})
	c, err := s.Call(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if c.Impl != 2 || c.Device != "dsp0" {
		t.Errorf("call = %+v", c)
	}
	if len(c.Trail) != 1 || c.Trail[0].Outcome != OutcomePlaced {
		t.Errorf("trail = %+v", c.Trail)
	}
	if c.Relaxations != 0 {
		t.Error("no relaxation expected")
	}
	if s.Live() != 1 {
		t.Error("call must be live")
	}
	if err := s.Release(c); err != nil {
		t.Fatal(err)
	}
	if s.Live() != 0 {
		t.Error("release must drop the call")
	}
	if err := s.Release(c); err == nil {
		t.Error("double release must fail")
	}
}

func TestCallNegotiatesThreshold(t *testing.T) {
	// Threshold 0.97 rejects even the DSP variant (0.96). Relaxing the
	// sample-rate constraint lifts the DSP variant to (1+1)/2 = 1.0.
	m := manager(t, alloc.Options{Threshold: 0.97})
	s := NewSession(m, "mp3", 5, Options{
		RelaxOrder: []attr.ID{casebase.AttrSampleRate, casebase.AttrOutputMode},
	})
	c, err := s.Call(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if c.Relaxations != 1 {
		t.Errorf("relaxations = %d, want 1", c.Relaxations)
	}
	if len(c.Trail) != 2 {
		t.Fatalf("trail = %+v", c.Trail)
	}
	if c.Trail[0].Outcome != OutcomeBelowThreshold || c.Trail[0].Relaxed != casebase.AttrSampleRate {
		t.Errorf("round 0 = %+v", c.Trail[0])
	}
	if c.Trail[1].Outcome != OutcomePlaced {
		t.Errorf("round 1 = %+v", c.Trail[1])
	}
	if c.Similarity < 0.97 {
		t.Errorf("final similarity %v below threshold", c.Similarity)
	}
}

func TestCallFailsWhenExhausted(t *testing.T) {
	m := manager(t, alloc.Options{Threshold: 1.1}) // unreachable
	s := NewSession(m, "mp3", 5, Options{
		RelaxOrder: []attr.ID{casebase.AttrSampleRate},
	})
	_, err := s.Call(casebase.PaperRequest())
	var nf *ErrNegotiationFailed
	if !errors.As(err, &nf) {
		t.Fatalf("want ErrNegotiationFailed, got %v", err)
	}
	// Trail: initial round (relaxed sample-rate) + relaxed round
	// (no further relaxation available).
	if len(nf.Trail) != 2 {
		t.Fatalf("trail = %+v", nf.Trail)
	}
	if nf.Trail[1].Relaxed != 0 {
		t.Error("final round must not relax further")
	}
	if nf.Error() == "" {
		t.Error("error must render")
	}
}

func TestCallNegotiatesInfeasible(t *testing.T) {
	// Platform with only a tiny GPP: the paper request's DSP/FPGA
	// variants cannot place; the GPP variant scores 0.43 which passes
	// (no threshold) but needs 700 permille — feasible. To force an
	// infeasible round, occupy the GPP first.
	cb, _ := casebase.PaperCaseBase()
	repo := device.NewRepository(20)
	_ = repo.PopulateFromCaseBase(cb)
	gpp := device.NewProcessor("gpp0", casebase.TargetGPP, 1000, 256*1024)
	m := alloc.New(cb, rtsys.NewSystem(repo, gpp), alloc.Options{})
	s := NewSession(m, "a", 5, Options{})
	first, err := s.Call(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Call(casebase.PaperRequest())
	var nf *ErrNegotiationFailed
	if !errors.As(err, &nf) {
		t.Fatalf("want ErrNegotiationFailed, got %v", err)
	}
	if nf.Trail[0].Outcome != OutcomeInfeasible {
		t.Errorf("outcome = %v", nf.Trail[0].Outcome)
	}
	if len(nf.Trail[0].Alternatives) == 0 {
		t.Error("alternatives must be carried in the trail")
	}
	// After releasing, the call succeeds again.
	if err := s.Release(first); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call(casebase.PaperRequest()); err != nil {
		t.Fatal(err)
	}
}

func TestSessionClose(t *testing.T) {
	m := manager(t, alloc.Options{})
	s := NewSession(m, "mp3", 5, Options{})
	if _, err := s.Call(casebase.PaperRequest()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call(casebase.PaperRequest()); err != nil {
		t.Fatal(err)
	}
	if s.Live() != 2 {
		t.Fatalf("live = %d", s.Live())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Live() != 0 {
		t.Error("close must release everything")
	}
	if s.App() != "mp3" {
		t.Error("app name lost")
	}
}

func TestCallPropagatesValidationErrors(t *testing.T) {
	m := manager(t, alloc.Options{})
	s := NewSession(m, "mp3", 5, Options{})
	bad := casebase.NewRequest(99, casebase.Constraint{ID: 1, Value: 16, Weight: 1})
	if _, err := s.Call(bad); err == nil {
		t.Error("invalid request must fail without negotiation")
	}
	var nf *ErrNegotiationFailed
	if errors.As(func() error { _, err := s.Call(bad); return err }(), &nf) {
		t.Error("validation errors are not negotiation failures")
	}
}
