// Package appapi is the paper's Application-API level (fig. 1): it
// "offers services for communication, sub-function calls and quality of
// service (QoS) negotiation" (§1). Applications open a session and issue
// QoS function calls; the session drives the §3 negotiation protocol
// against the allocation manager on their behalf:
//
//  1. request the function with the full constraint set;
//  2. if nothing clears the similarity threshold, or nothing feasible
//     remains, "repeat its request with rather relaxed constraints" —
//     dropping attributes in the application's declared order of
//     dispensability;
//  3. if relaxations are exhausted, "the application can not call the
//     function" and the call fails with the full negotiation trail
//     attached.
package appapi

import (
	"errors"
	"fmt"

	"qosalloc/internal/alloc"
	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtsys"
)

// Outcome classifies one negotiation step.
type Outcome string

// Negotiation step outcomes. The last two are post-placement: a fault
// stranded the call's task and the allocation layer either degraded it
// onto a substitute variant or rejected it with a DegradationReport.
const (
	OutcomePlaced         Outcome = "placed"
	OutcomeBelowThreshold Outcome = "below-threshold"
	OutcomeInfeasible     Outcome = "infeasible"
	OutcomeDegraded       Outcome = "degraded"
	OutcomeFaultRejected  Outcome = "fault-rejected"
)

// Step is one round of the negotiation trail.
type Step struct {
	Request casebase.Request
	Outcome Outcome
	// Relaxed is the attribute dropped before the next round (0 when
	// this was the final round).
	Relaxed attr.ID
	// Alternatives carries the manager's counter-offers on an
	// infeasible round.
	Alternatives []retrieval.Result
	// Degradation names the QoS lost on an OutcomeDegraded step.
	Degradation *alloc.Degradation
	// Report carries the structured rejection on an
	// OutcomeFaultRejected step.
	Report *alloc.DegradationReport
}

// Call is one sub-function call made through the API.
type Call struct {
	Seq         int
	Type        casebase.TypeID
	Task        rtsys.TaskID
	Impl        casebase.ImplID
	Device      string
	Similarity  float64
	Relaxations int
	// Degradations counts fault recoveries that moved this call to a
	// worse variant; the trail's OutcomeDegraded steps carry details.
	Degradations int
	Trail        []Step
	released     bool
}

// ErrNegotiationFailed reports an exhausted negotiation with its trail.
type ErrNegotiationFailed struct {
	Type  casebase.TypeID
	Trail []Step
}

func (e *ErrNegotiationFailed) Error() string {
	return fmt.Sprintf("appapi: negotiation for function type %d failed after %d rounds",
		e.Type, len(e.Trail))
}

// Options configure a session's negotiation behavior.
type Options struct {
	// RelaxOrder lists constraint attributes in the order the
	// application is willing to give them up (most dispensable
	// first). Attributes not listed are never relaxed.
	RelaxOrder []attr.ID
	// MaxRelaxations bounds the negotiation rounds beyond the first;
	// zero means len(RelaxOrder).
	MaxRelaxations int
}

// Session is an application's connection to the allocation layer.
type Session struct {
	app    string
	prio   int
	mgr    *alloc.Manager
	opt    Options
	seq    int
	live   map[int]*Call
	byTask map[rtsys.TaskID]*Call
}

// NewSession opens a session for app at the given base priority.
func NewSession(mgr *alloc.Manager, app string, prio int, opt Options) *Session {
	if opt.MaxRelaxations <= 0 {
		opt.MaxRelaxations = len(opt.RelaxOrder)
	}
	return &Session{
		app: app, prio: prio, mgr: mgr, opt: opt,
		live:   make(map[int]*Call),
		byTask: make(map[rtsys.TaskID]*Call),
	}
}

// App returns the session's application name.
func (s *Session) App() string { return s.app }

// Live returns the number of unreleased calls.
func (s *Session) Live() int { return len(s.live) }

// Call requests a sub-function under QoS constraints, negotiating
// relaxations as configured. On success the function is allocated and a
// Call handle returned; the trail records every round either way.
func (s *Session) Call(req casebase.Request) (*Call, error) {
	c := &Call{Seq: s.seq, Type: req.Type}
	s.seq++

	current := req
	relaxIdx := 0
	for round := 0; ; round++ {
		d, err := s.mgr.Request(s.app, current, s.prio)
		if err == nil {
			c.Trail = append(c.Trail, Step{Request: current, Outcome: OutcomePlaced})
			c.Task = d.Task.ID
			c.Impl = d.Impl
			c.Device = string(d.Device)
			c.Similarity = d.Similarity
			c.Relaxations = round
			s.live[c.Seq] = c
			s.byTask[c.Task] = c
			return c, nil
		}

		step := Step{Request: current}
		var nm *retrieval.ErrNoMatch
		var nf *alloc.ErrNoFeasible
		switch {
		case errors.As(err, &nm):
			step.Outcome = OutcomeBelowThreshold
		case errors.As(err, &nf):
			step.Outcome = OutcomeInfeasible
			step.Alternatives = nf.Alternatives
		default:
			// Validation errors etc. are not negotiable.
			return nil, err
		}

		// Pick the next relaxable attribute actually present in the
		// current constraint set.
		relaxed := attr.ID(0)
		for relaxIdx < len(s.opt.RelaxOrder) && round < s.opt.MaxRelaxations {
			cand := s.opt.RelaxOrder[relaxIdx]
			relaxIdx++
			if next, ok := current.Relax(cand); ok {
				relaxed = cand
				current = next
				break
			}
		}
		step.Relaxed = relaxed
		c.Trail = append(c.Trail, step)
		if relaxed == 0 {
			return nil, &ErrNegotiationFailed{Type: req.Type, Trail: c.Trail}
		}
	}
}

// Release finishes a call's function allocation.
func (s *Session) Release(c *Call) error {
	if c.released {
		return fmt.Errorf("appapi: call %d already released", c.Seq)
	}
	if _, ok := s.live[c.Seq]; !ok {
		return fmt.Errorf("appapi: call %d does not belong to this session", c.Seq)
	}
	if err := s.mgr.Release(c.Task); err != nil {
		return err
	}
	c.released = true
	delete(s.live, c.Seq)
	delete(s.byTask, c.Task)
	return nil
}

// AbsorbRecovery folds one fault-recovery outcome from the allocation
// layer into the owning call's trail, so the application sees *what*
// QoS it lost rather than a bare error. It reports whether the recovery
// belonged to this session; callers fan a batch of recoveries across
// every open session.
func (s *Session) AbsorbRecovery(rec alloc.Recovery) bool {
	c, ok := s.byTask[rec.Task]
	if !ok {
		return false
	}
	switch {
	case rec.Decision != nil:
		c.Impl = rec.Decision.Impl
		c.Device = string(rec.Decision.Device)
		c.Similarity = rec.Decision.Similarity
		step := Step{Outcome: OutcomePlaced}
		if rec.Decision.Degraded != nil {
			c.Degradations++
			step.Outcome = OutcomeDegraded
			step.Degradation = rec.Decision.Degraded
		}
		c.Trail = append(c.Trail, step)
	case rec.Report != nil:
		// The manager already completed the task; the call is dead.
		c.Trail = append(c.Trail, Step{Outcome: OutcomeFaultRejected, Report: rec.Report})
		c.released = true
		delete(s.live, c.Seq)
		delete(s.byTask, rec.Task)
	}
	return true
}

// Close releases every live call of the session.
func (s *Session) Close() error {
	for _, c := range s.live {
		if err := s.Release(c); err != nil {
			return err
		}
	}
	return nil
}
