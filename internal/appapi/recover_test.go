package appapi

import (
	"testing"

	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
)

func TestAbsorbRecoveryDegraded(t *testing.T) {
	m := manager(t, alloc.Options{})
	s := NewSession(m, "mp3", 5, Options{})
	c, err := s.Call(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if c.Device != "dsp0" {
		t.Fatalf("call = %+v, want dsp0", c)
	}
	if _, err := m.System().FailDevice("dsp0"); err != nil {
		t.Fatal(err)
	}
	recs := m.RecoverFromFaults()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %d", len(recs))
	}
	if !s.AbsorbRecovery(recs[0]) {
		t.Fatal("recovery belongs to this session")
	}
	// The call handle now reflects the substitute variant.
	if c.Impl != 1 || c.Device != "fpga0" || c.Degradations != 1 {
		t.Errorf("call after recovery = %+v", c)
	}
	last := c.Trail[len(c.Trail)-1]
	if last.Outcome != OutcomeDegraded || last.Degradation == nil {
		t.Errorf("trail step = %+v", last)
	}
	if last.Degradation.FromImpl != 2 || last.Degradation.ToImpl != 1 {
		t.Errorf("degradation = %+v", last.Degradation)
	}
	// The call is still live and releasable.
	if s.Live() != 1 {
		t.Errorf("live = %d", s.Live())
	}
	if err := s.Release(c); err != nil {
		t.Fatal(err)
	}
}

func TestAbsorbRecoveryRejected(t *testing.T) {
	m := manager(t, alloc.Options{})
	s := NewSession(m, "mp3", 5, Options{})
	c, err := s.Call(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []device.ID{"dsp0", "fpga0", "gpp0"} {
		if _, err := m.System().FailDevice(name); err != nil {
			t.Fatal(err)
		}
	}
	recs := m.RecoverFromFaults()
	if len(recs) != 1 || recs[0].Report == nil {
		t.Fatalf("recoveries = %+v", recs)
	}
	if !s.AbsorbRecovery(recs[0]) {
		t.Fatal("recovery belongs to this session")
	}
	last := c.Trail[len(c.Trail)-1]
	if last.Outcome != OutcomeFaultRejected || last.Report == nil {
		t.Errorf("trail step = %+v", last)
	}
	// A rejected call is dead: no longer live, double release refused.
	if s.Live() != 0 {
		t.Errorf("live = %d", s.Live())
	}
	if err := s.Release(c); err == nil {
		t.Error("releasing a fault-rejected call must fail")
	}
	// Close has nothing left to do.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAbsorbRecoveryForeignTask(t *testing.T) {
	m := manager(t, alloc.Options{})
	s := NewSession(m, "mp3", 5, Options{})
	if s.AbsorbRecovery(alloc.Recovery{Task: 999}) {
		t.Error("unknown task cannot belong to this session")
	}
}
