package learn

// Deferred net-commit accumulation (DESIGN.md §14). High-frequency
// run-time observations must never serialize readers of the committed
// case base, so each writer folds its measurements into a volatile
// Delta first: per-(type, impl, attribute) EWMA state kept entirely off
// the read path. The deltas flow into a committed snapshot only when a
// FoldPolicy trips — enough pending LSB-visible revisions to matter, or
// pending state old enough that it must not stay invisible — at which
// point the committer drains every Delta into a Learner, rebuilds, and
// swaps the published snapshot in one unit.
//
// The fold quantizes each pending value to the attribute LSB (the
// 16-bit datapath grid); sub-LSB EWMA residue is deliberately discarded
// and the next accumulation round seeds from the committed value. That
// keeps a replay a pure function of the observation schedule and the
// fold points, independent of how many writer stripes the deltas were
// spread across: every (type, impl, attribute) key's state is key-local,
// so striping changes only who holds the state, never its value.

import (
	"fmt"
	"math"
	"sort"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
)

// FoldPolicy decides when accumulated deltas must fold into a committed
// snapshot.
type FoldPolicy struct {
	// Threshold trips a fold once the pending LSB-visible revision
	// count — attribute values whose rounded pending state differs from
	// the committed case base — reaches it. Zero or negative disables
	// the magnitude trigger.
	Threshold int
	// MaxAge trips a fold once the oldest pending observation is at
	// least this old on the sim clock, so a trickle of observations
	// cannot stay invisible forever. Zero disables the age trigger.
	MaxAge device.Micros
}

// Due reports whether the policy requires a fold given the pending
// revision count and the sim-time of the oldest pending observation
// (hasPending=false means the delta layer is empty: never due).
func (p FoldPolicy) Due(pendingRevs int, firstAt, now device.Micros, hasPending bool) bool {
	if !hasPending {
		return false
	}
	if p.Threshold > 0 && pendingRevs >= p.Threshold {
		return true
	}
	return p.MaxAge > 0 && now >= firstAt && now-firstAt >= p.MaxAge
}

// Delta is one writer's volatile observation accumulator over a
// committed case base. It is not safe for concurrent use; each writer
// stripe owns one Delta behind its own mutex. Readers of the committed
// snapshot never touch it.
type Delta struct {
	base  *casebase.CaseBase
	alpha float64

	pending map[implKey]map[attr.ID]float64 // EWMA state, clamped to design bounds
	obs     int
}

// NewDelta returns an empty delta over the committed base with EWMA
// weight alpha in (0, 1].
func NewDelta(base *casebase.CaseBase, alpha float64) (*Delta, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("learn: alpha %v outside (0, 1]", alpha)
	}
	return &Delta{
		base: base, alpha: alpha,
		pending: make(map[implKey]map[attr.ID]float64),
	}, nil
}

// Observations returns how many observations are pending in this delta.
func (d *Delta) Observations() int { return d.obs }

// Empty reports whether the delta holds no pending state.
func (d *Delta) Empty() bool { return d.obs == 0 }

// Observe folds one measurement into the pending EWMA state, exactly
// like Learner.Observe but against the committed base plus this delta's
// own state. It returns the change in the LSB-visible revision count:
// +1 for every attribute whose rounded pending value just started
// differing from the committed value, -1 for every one that just
// drifted back onto it — so a caller can maintain a global pending
// count across stripes without scanning them.
func (d *Delta) Observe(o Observation) (revDelta int, err error) {
	ft, ok := d.base.Type(o.Type)
	if !ok {
		return 0, fmt.Errorf("learn: observation for unknown type %d", o.Type)
	}
	im, ok := ft.Impl(o.Impl)
	if !ok {
		return 0, fmt.Errorf("learn: observation for unknown impl %d of type %d", o.Impl, o.Type)
	}
	k := implKey{o.Type, o.Impl}
	for _, p := range o.Measured {
		def, ok := d.base.Registry().Lookup(p.ID)
		if !ok {
			return revDelta, fmt.Errorf("learn: observation references unknown attribute %d", p.ID)
		}
		committed, has := im.Attr(p.ID)
		if !has {
			continue // case does not describe this attribute
		}
		cur := float64(committed)
		if m := d.pending[k]; m != nil {
			if v, ok := m[p.ID]; ok {
				cur = v
			}
		}
		next := (1-d.alpha)*cur + d.alpha*float64(p.Value)
		next = math.Max(float64(def.Lo), math.Min(float64(def.Hi), next))
		if d.pending[k] == nil {
			d.pending[k] = make(map[attr.ID]float64)
		}
		wasDirty := uint16(math.Round(cur)) != uint16(committed)
		nowDirty := uint16(math.Round(next)) != uint16(committed)
		d.pending[k][p.ID] = next
		if nowDirty && !wasDirty {
			revDelta++
		} else if !nowDirty && wasDirty {
			revDelta--
		}
	}
	d.obs++
	return revDelta, nil
}

// FoldInto drains the pending state into l (a Learner over the same
// committed base, built with alpha 1 so each fold write replaces the
// stored value outright). Keys are visited in sorted (type, impl,
// attribute) order so the fold — and everything journaled about it — is
// identical no matter how map iteration or stripe assignment shuffled
// the state. Values are quantized to the attribute LSB here; sub-LSB
// residue is dropped by design (see the package comment above). The
// delta itself is not cleared — call Reset against the newly committed
// base once the swap has landed.
func (d *Delta) FoldInto(l *Learner) (folded int, err error) {
	keys := make([]implKey, 0, len(d.pending))
	for k := range d.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].t != keys[j].t {
			return keys[i].t < keys[j].t
		}
		return keys[i].i < keys[j].i
	})
	for _, k := range keys {
		m := d.pending[k]
		ids := make([]attr.ID, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		pairs := make([]attr.Pair, 0, len(ids))
		for _, id := range ids {
			pairs = append(pairs, attr.Pair{ID: id, Value: attr.Value(math.Round(m[id]))})
		}
		if err := l.Observe(Observation{Type: k.t, Impl: k.i, Measured: pairs}); err != nil {
			return folded, err
		}
		folded += len(pairs)
	}
	return folded, nil
}

// Reset clears the delta and rebases it onto a newly committed case
// base. Pending state not folded first is discarded.
func (d *Delta) Reset(base *casebase.CaseBase) {
	d.base = base
	d.pending = make(map[implKey]map[attr.ID]float64)
	d.obs = 0
}
