package learn

import (
	"testing"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/memlist"
	"qosalloc/internal/retrieval"
)

func newLearner(t *testing.T, alpha float64) (*Learner, *casebase.CaseBase) {
	t.Helper()
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLearner(cb, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return l, cb
}

func TestNewLearnerValidatesAlpha(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	for _, a := range []float64{0, -1, 1.5} {
		if _, err := NewLearner(cb, a); err == nil {
			t.Errorf("alpha %v must be rejected", a)
		}
	}
	if _, err := NewLearner(cb, 1); err != nil {
		t.Errorf("alpha 1 is valid: %v", err)
	}
}

func TestReviseConverges(t *testing.T) {
	// The DSP equalizer claims 44 kS/s; monitors repeatedly observe
	// only 40. The revision must converge onto 40.
	l, _ := newLearner(t, 0.5)
	for i := 0; i < 12; i++ {
		err := l.Observe(Observation{
			Type: casebase.TypeFIREqualizer, Impl: 2,
			Measured: []attr.Pair{{ID: casebase.AttrSampleRate, Value: 40}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	cb2, changed, err := l.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Errorf("changed = %d, want 1", changed)
	}
	ft, _ := cb2.Type(casebase.TypeFIREqualizer)
	im, _ := ft.Impl(2)
	if v, _ := im.Attr(casebase.AttrSampleRate); v != 40 {
		t.Errorf("revised sample rate = %d, want 40", v)
	}
	// Unrelated attributes untouched.
	if v, _ := im.Attr(casebase.AttrBitwidth); v != 16 {
		t.Errorf("bitwidth disturbed: %d", v)
	}
	if l.Stats().Observations != 12 {
		t.Errorf("stats = %+v", l.Stats())
	}
}

func TestReviseChangesRetrievalOutcome(t *testing.T) {
	// Revision is visible to retrieval: degrade the DSP variant's
	// sample rate to 8 kS/s and the FPGA variant overtakes it for the
	// paper request.
	l, _ := newLearner(t, 1)
	if err := l.Observe(Observation{
		Type: casebase.TypeFIREqualizer, Impl: 2,
		Measured: []attr.Pair{{ID: casebase.AttrSampleRate, Value: 8}},
	}); err != nil {
		t.Fatal(err)
	}
	cb2, _, err := l.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	e := retrieval.NewEngine(cb2, retrieval.Options{})
	best, err := e.Retrieve(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if best.Impl != 1 {
		t.Errorf("after degrading DSP, best = %d, want FPGA (1)", best.Impl)
	}
}

func TestReviseClampsToBounds(t *testing.T) {
	// Observations outside the design range are clamped so dmax stays
	// valid and the rebuilt tree still validates.
	l, _ := newLearner(t, 1)
	if err := l.Observe(Observation{
		Type: casebase.TypeFIREqualizer, Impl: 2,
		Measured: []attr.Pair{{ID: casebase.AttrSampleRate, Value: 60000}},
	}); err != nil {
		t.Fatal(err)
	}
	cb2, _, err := l.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	ft, _ := cb2.Type(casebase.TypeFIREqualizer)
	im, _ := ft.Impl(2)
	if v, _ := im.Attr(casebase.AttrSampleRate); v != 44 {
		t.Errorf("clamped value = %d, want the upper bound 44", v)
	}
}

func TestObserveIgnoresUndescribedAttrs(t *testing.T) {
	// The FFT FPGA variant does not describe output-mode; observing it
	// must not invent the attribute.
	l, _ := newLearner(t, 1)
	if err := l.Observe(Observation{
		Type: casebase.Type1DFFT, Impl: 1,
		Measured: []attr.Pair{{ID: casebase.AttrOutputMode, Value: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	cb2, changed, err := l.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Errorf("changed = %d, want 0", changed)
	}
	ft, _ := cb2.Type(casebase.Type1DFFT)
	im, _ := ft.Impl(1)
	if _, ok := im.Attr(casebase.AttrOutputMode); ok {
		t.Error("undescribed attribute must not appear")
	}
}

func TestObserveValidates(t *testing.T) {
	l, _ := newLearner(t, 0.5)
	if err := l.Observe(Observation{Type: 99, Impl: 1}); err == nil {
		t.Error("unknown type must fail")
	}
	if err := l.Observe(Observation{Type: 1, Impl: 99}); err == nil {
		t.Error("unknown impl must fail")
	}
	if err := l.Observe(Observation{
		Type: 1, Impl: 1, Measured: []attr.Pair{{ID: 99, Value: 1}},
	}); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func TestRetainNewVariant(t *testing.T) {
	l, _ := newLearner(t, 0.5)
	id, err := l.Retain(casebase.TypeFIREqualizer, casebase.Implementation{
		Name: "fir-eq-dsp2", Target: casebase.TargetDSP,
		Attrs: []attr.Pair{
			{ID: casebase.AttrBitwidth, Value: 16},
			{ID: casebase.AttrOutputMode, Value: 1},
			{ID: casebase.AttrSampleRate, Value: 40},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 {
		t.Errorf("assigned ID = %d, want 4 (next free)", id)
	}
	cb2, changed, err := l.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Errorf("changed = %d", changed)
	}
	// The retained variant matches the paper request exactly on sample
	// rate 40 and wins retrieval.
	e := retrieval.NewEngine(cb2, retrieval.Options{})
	best, err := e.Retrieve(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if best.Impl != id {
		t.Errorf("best after retain = %d, want the new variant %d", best.Impl, id)
	}
	// And the new tree still encodes as a valid memory image.
	if _, err := memlist.EncodeTree(cb2); err != nil {
		t.Fatal(err)
	}
}

func TestRetainDuplicateRejected(t *testing.T) {
	l, _ := newLearner(t, 0.5)
	if _, err := l.Retain(casebase.TypeFIREqualizer, casebase.Implementation{ID: 2}); err == nil {
		t.Error("retaining an existing ID must fail")
	}
	if _, err := l.Retain(99, casebase.Implementation{}); err == nil {
		t.Error("retaining into an unknown type must fail")
	}
	if _, err := l.Retain(casebase.TypeFIREqualizer, casebase.Implementation{ID: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Retain(casebase.TypeFIREqualizer, casebase.Implementation{ID: 9}); err == nil {
		t.Error("retaining the same new ID twice must fail")
	}
}

func TestRetire(t *testing.T) {
	l, _ := newLearner(t, 0.5)
	if err := l.Retire(casebase.TypeFIREqualizer, 2); err != nil {
		t.Fatal(err)
	}
	cb2, changed, err := l.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Errorf("changed = %d", changed)
	}
	ft, _ := cb2.Type(casebase.TypeFIREqualizer)
	if _, ok := ft.Impl(2); ok {
		t.Error("retired variant still present")
	}
	if len(ft.Impls) != 2 {
		t.Errorf("impls = %d, want 2", len(ft.Impls))
	}
	// Retrieval falls back to the FPGA variant.
	e := retrieval.NewEngine(cb2, retrieval.Options{})
	best, _ := e.Retrieve(casebase.PaperRequest())
	if best.Impl != 1 {
		t.Errorf("best after retiring DSP = %d, want 1", best.Impl)
	}
}

func TestRetireValidates(t *testing.T) {
	l, _ := newLearner(t, 0.5)
	if err := l.Retire(99, 1); err == nil {
		t.Error("unknown type must fail")
	}
	if err := l.Retire(1, 99); err == nil {
		t.Error("unknown impl must fail")
	}
}

func TestRetireLastVariantFailsRebuild(t *testing.T) {
	l, _ := newLearner(t, 0.5)
	// The 1D-FFT type has two variants; retire both.
	if err := l.Retire(casebase.Type1DFFT, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Retire(casebase.Type1DFFT, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Rebuild(); err == nil {
		t.Error("rebuild with an empty type must fail validation")
	}
}
