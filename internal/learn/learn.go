// Package learn closes the paper's CBR cycle (fig. 2) around the
// retrieval step and implements the §5 future work: "we conceive dynamic
// update mechanisms of Case-Base-data structures and function
// repositories at run-time enabling for a self-learning system".
//
// The paper's deployed system — like "many practical CBR
// implementations" (§5) — stops at Retrieve/Reuse. This package adds the
// remaining half of the cycle:
//
//   - Revise: applications (or the HW-layer's monitors) report the QoS
//     attribute values a running implementation actually achieved;
//     deviations from the case description are folded in with an
//     exponentially weighted moving average, clamped to the design
//     bounds so dmax stays valid.
//   - Retain: new implementation variants arriving in the function
//     repository at run time are retained as new cases; withdrawn
//     variants are retired.
//
// A Learner never mutates the live CaseBase (retrieval structures and
// BRAM images are immutable); it accumulates changes and emits a fresh,
// validated CaseBase via Rebuild. The caller swaps engines, regenerates
// memory images and invalidates bypass tokens — exactly the update
// protocol a dynamic BRAM reload would follow.
package learn

import (
	"fmt"
	"math"
	"sort"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
)

// Observation is one run-time QoS measurement of a deployed variant.
type Observation struct {
	Type     casebase.TypeID
	Impl     casebase.ImplID
	Measured []attr.Pair // observed attribute values
}

// Stats counts learner activity.
type Stats struct {
	Observations int
	Revisions    int // attribute values changed by at least one LSB
	Retained     int
	Retired      int
	Rebuilds     int
}

type implKey struct {
	t casebase.TypeID
	i casebase.ImplID
}

// Learner accumulates revisions and retained cases over a base
// case base.
type Learner struct {
	base *casebase.CaseBase
	// Alpha is the EWMA weight of new observations in (0, 1];
	// 1 replaces the stored value outright.
	Alpha float64

	revised  map[implKey]map[attr.ID]float64 // EWMA state
	retained map[casebase.TypeID][]casebase.Implementation
	retired  map[implKey]bool
	stats    Stats
}

// NewLearner returns a learner over base with EWMA weight alpha.
func NewLearner(base *casebase.CaseBase, alpha float64) (*Learner, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("learn: alpha %v outside (0, 1]", alpha)
	}
	return &Learner{
		base: base, Alpha: alpha,
		revised:  make(map[implKey]map[attr.ID]float64),
		retained: make(map[casebase.TypeID][]casebase.Implementation),
		retired:  make(map[implKey]bool),
	}, nil
}

// Stats returns a copy of the counters.
func (l *Learner) Stats() Stats { return l.stats }

// current returns the working value of an attribute: the EWMA state if
// any, else the stored case value.
func (l *Learner) current(k implKey, im *casebase.Implementation, id attr.ID) (float64, bool) {
	if m, ok := l.revised[k]; ok {
		if v, ok := m[id]; ok {
			return v, true
		}
	}
	v, ok := im.Attr(id)
	return float64(v), ok
}

// Observe folds one measurement into the revision state. Attributes the
// case does not describe are ignored (retention of new attributes would
// change the request vocabulary, which is a design-time decision).
func (l *Learner) Observe(obs Observation) error {
	ft, ok := l.base.Type(obs.Type)
	if !ok {
		return fmt.Errorf("learn: observation for unknown type %d", obs.Type)
	}
	im, ok := ft.Impl(obs.Impl)
	if !ok {
		return fmt.Errorf("learn: observation for unknown impl %d of type %d", obs.Impl, obs.Type)
	}
	k := implKey{obs.Type, obs.Impl}
	l.stats.Observations++
	for _, p := range obs.Measured {
		def, ok := l.base.Registry().Lookup(p.ID)
		if !ok {
			return fmt.Errorf("learn: observation references unknown attribute %d", p.ID)
		}
		cur, has := l.current(k, im, p.ID)
		if !has {
			continue // case does not describe this attribute
		}
		// EWMA, clamped into the design-global bounds so the
		// supplemental table's dmax stays an upper bound.
		next := (1-l.Alpha)*cur + l.Alpha*float64(p.Value)
		next = math.Max(float64(def.Lo), math.Min(float64(def.Hi), next))
		if l.revised[k] == nil {
			l.revised[k] = make(map[attr.ID]float64)
		}
		before := uint16(math.Round(cur))
		l.revised[k][p.ID] = next
		if uint16(math.Round(next)) != before {
			l.stats.Revisions++
		}
	}
	return nil
}

// Retain registers a new implementation variant for a type, the
// run-time repository update. A zero ImplID is assigned the next free
// ID of the type. The variant is validated at Rebuild.
func (l *Learner) Retain(t casebase.TypeID, im casebase.Implementation) (casebase.ImplID, error) {
	ft, ok := l.base.Type(t)
	if !ok {
		return 0, fmt.Errorf("learn: retain for unknown type %d", t)
	}
	if im.ID == 0 {
		im.ID = l.nextFreeImplID(ft)
	} else if _, dup := ft.Impl(im.ID); dup {
		return 0, fmt.Errorf("learn: impl %d already exists in type %d", im.ID, t)
	} else {
		for _, r := range l.retained[t] {
			if r.ID == im.ID {
				return 0, fmt.Errorf("learn: impl %d already retained for type %d", im.ID, t)
			}
		}
	}
	l.retained[t] = append(l.retained[t], im)
	l.stats.Retained++
	return im.ID, nil
}

func (l *Learner) nextFreeImplID(ft *casebase.FunctionType) casebase.ImplID {
	next := casebase.ImplID(1)
	for _, im := range ft.Impls {
		if im.ID >= next {
			next = im.ID + 1
		}
	}
	for _, im := range l.retained[ft.ID] {
		if im.ID >= next {
			next = im.ID + 1
		}
	}
	return next
}

// Retire marks a variant withdrawn from the repository; Rebuild drops
// it. Retiring the last variant of a type fails at Rebuild (a type with
// no implementations cannot be served).
func (l *Learner) Retire(t casebase.TypeID, id casebase.ImplID) error {
	ft, ok := l.base.Type(t)
	if !ok {
		return fmt.Errorf("learn: retire for unknown type %d", t)
	}
	if _, ok := ft.Impl(id); !ok {
		return fmt.Errorf("learn: retire of unknown impl %d in type %d", id, t)
	}
	l.retired[implKey{t, id}] = true
	l.stats.Retired++
	return nil
}

// Rebuild emits a fresh, fully validated CaseBase with all accumulated
// revisions, retentions and retirements applied, plus the count of
// implementation entries that differ from the base.
func (l *Learner) Rebuild() (*casebase.CaseBase, int, error) {
	b := casebase.NewBuilder(l.base.Registry())
	changed := 0
	for _, ft := range l.base.Types() {
		b.AddType(ft.ID, ft.Name)
		for i := range ft.Impls {
			im := ft.Impls[i]
			k := implKey{ft.ID, im.ID}
			if l.retired[k] {
				changed++
				continue
			}
			if rev, ok := l.revised[k]; ok {
				attrs := append([]attr.Pair(nil), im.Attrs...)
				implChanged := false
				for j := range attrs {
					if v, ok := rev[attrs[j].ID]; ok {
						nv := attr.Value(math.Round(v))
						if nv != attrs[j].Value {
							attrs[j].Value = nv
							implChanged = true
						}
					}
				}
				im.Attrs = attrs
				if implChanged {
					changed++
				}
			}
			b.AddImpl(ft.ID, im)
		}
		news := append([]casebase.Implementation(nil), l.retained[ft.ID]...)
		sort.Slice(news, func(i, j int) bool { return news[i].ID < news[j].ID })
		for _, im := range news {
			b.AddImpl(ft.ID, im)
			changed++
		}
	}
	cb, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	l.stats.Rebuilds++
	return cb, changed, nil
}
