package rtl

import (
	"fmt"
	"io"
	"sort"
)

// WriteVCD renders a Trace as an IEEE 1364 value change dump, so FSM and
// datapath activity recorded from a simulation can be inspected in any
// waveform viewer (GTKWave etc.). Signals are emitted as 64-bit vector
// variables under one module scope; timescale is one clock cycle per
// time unit.
func WriteVCD(w io.Writer, t *Trace, module string) error {
	if module == "" {
		module = "rtl"
	}
	signals := t.Signals()
	if len(signals) == 0 {
		return fmt.Errorf("rtl: trace has no signals to dump")
	}
	// VCD identifier codes: printable ASCII starting at '!'.
	code := make(map[string]string, len(signals))
	for i, s := range signals {
		code[s] = vcdID(i)
	}

	if _, err := fmt.Fprintf(w, "$timescale 1ns $end\n$scope module %s $end\n", module); err != nil {
		return err
	}
	for _, s := range signals {
		if _, err := fmt.Fprintf(w, "$var wire 64 %s %s $end\n", code[s], s); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}

	// Group events by cycle, preserving signal order within a cycle.
	events := t.Events()
	byCycle := make(map[uint64][]Event)
	var cycles []uint64
	for _, e := range events {
		if _, seen := byCycle[e.Cycle]; !seen {
			cycles = append(cycles, e.Cycle)
		}
		byCycle[e.Cycle] = append(byCycle[e.Cycle], e)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })

	for _, c := range cycles {
		if _, err := fmt.Fprintf(w, "#%d\n", c); err != nil {
			return err
		}
		for _, e := range byCycle[c] {
			if _, err := fmt.Fprintf(w, "b%b %s\n", e.Value, code[e.Signal]); err != nil {
				return err
			}
		}
	}
	return nil
}

// vcdID converts an index to a compact VCD identifier over the printable
// range '!'..'~'.
func vcdID(i int) string {
	const lo, hi = '!', '~'
	const n = hi - lo + 1
	s := ""
	for {
		s += string(rune(lo + i%n))
		i /= n
		if i == 0 {
			return s
		}
		i--
	}
}
