package rtl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegHoldsAndLatches(t *testing.T) {
	r := NewReg(uint16(7))
	if r.Q() != 7 {
		t.Fatal("reset value lost")
	}
	r.Set(9)
	if r.Q() != 7 {
		t.Fatal("Set must not be visible before Commit")
	}
	r.Commit()
	if r.Q() != 9 {
		t.Fatal("Commit must latch")
	}
	// No Set this cycle → value held.
	r.Commit()
	if r.Q() != 9 {
		t.Fatal("register must hold without Set")
	}
	r.Reset(1)
	if r.Q() != 1 {
		t.Fatal("Reset must apply immediately")
	}
}

func TestSimulatorStepOrdering(t *testing.T) {
	// Two registers in a chain: b samples a's Q. After one step, b
	// must hold a's OLD value — flip-flop semantics.
	a := NewReg(uint16(1))
	b := NewReg(uint16(0))
	sim := NewSimulator()
	sim.Add(chain{a, b}, a, b)
	sim.Step()
	if b.Q() != 1 {
		t.Fatalf("b = %d, want 1 (a's previous Q)", b.Q())
	}
	if a.Q() != 2 {
		t.Fatalf("a = %d, want 2", a.Q())
	}
	if sim.Cycle() != 1 {
		t.Fatalf("cycle = %d", sim.Cycle())
	}
}

// chain drives a := a+1 and b := a every cycle.
type chain struct{ a, b *Reg[uint16] }

func (c chain) Compute() {
	c.b.Set(c.a.Q())
	c.a.Set(c.a.Q() + 1)
}
func (c chain) Commit() {}

func TestRunUntilDone(t *testing.T) {
	a := NewReg(uint16(0))
	sim := NewSimulator()
	sim.Add(incrementer{a}, a)
	n, err := sim.Run(func() bool { return a.Q() >= 10 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("took %d cycles, want 10", n)
	}
}

type incrementer struct{ a *Reg[uint16] }

func (i incrementer) Compute() { i.a.Set(i.a.Q() + 1) }
func (i incrementer) Commit()  {}

func TestRunMaxCycles(t *testing.T) {
	sim := NewSimulator()
	_, err := sim.Run(func() bool { return false }, 5)
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("want ErrMaxCycles, got %v", err)
	}
	if sim.Cycle() != 5 {
		t.Fatalf("cycle = %d", sim.Cycle())
	}
}

func TestBRAMSynchronousRead(t *testing.T) {
	b := NewBRAM16(8, []uint16{10, 11, 12})
	sim := NewSimulator()
	sim.Add(b)
	b.ReadA(2)
	if b.DoutA() != 0 {
		t.Fatal("read data must not appear combinationally")
	}
	sim.Step()
	if b.DoutA() != 12 {
		t.Fatalf("DoutA = %d, want 12", b.DoutA())
	}
	// Without a new read, Dout holds.
	sim.Step()
	if b.DoutA() != 12 {
		t.Fatal("DoutA must hold without a new read")
	}
	if b.Reads() != 1 {
		t.Fatalf("reads = %d", b.Reads())
	}
}

func TestBRAMDualPort(t *testing.T) {
	b := NewBRAM16(8, []uint16{1, 2, 3, 4})
	b.ReadA(0)
	b.ReadB(1)
	b.Commit()
	if b.DoutA() != 1 || b.DoutB() != 2 {
		t.Fatalf("dual read = %d,%d", b.DoutA(), b.DoutB())
	}
	if b.Reads() != 2 {
		t.Fatalf("reads = %d", b.Reads())
	}
}

func TestBRAMWrite(t *testing.T) {
	b := NewBRAM16(4, nil)
	b.Write(3, 99)
	b.Commit()
	b.ReadA(3)
	b.Commit()
	if b.DoutA() != 99 {
		t.Fatalf("read-after-write = %d", b.DoutA())
	}
	if b.Writes() != 1 {
		t.Fatal("write count")
	}
	// Out-of-range accesses are safe.
	b.Write(77, 1)
	b.Commit()
	b.ReadA(-1)
	b.Commit()
	if b.DoutA() != 0 {
		t.Fatal("out-of-range read must be 0")
	}
}

func TestBRAMDepth(t *testing.T) {
	if NewBRAM16(1024, nil).Depth() != 1024 {
		t.Fatal("depth")
	}
}

func TestMult18Registered(t *testing.T) {
	m := &Mult18{}
	m.Set(300, 70)
	if m.P() != 0 {
		t.Fatal("product must be registered, not combinational")
	}
	m.Commit()
	if m.P() != 21000 {
		t.Fatalf("P = %d", m.P())
	}
	if m.Uses() != 1 {
		t.Fatal("uses")
	}
	// Operands are masked to 18 bits.
	m.Set(1<<20|3, 2)
	m.Commit()
	if m.P() != 6 {
		t.Fatalf("masked P = %d, want 6", m.P())
	}
}

// Property: a BRAM read always returns the value most recently written
// (or the init value), never a torn or stale word.
func TestBRAMReadAfterWriteProperty(t *testing.T) {
	f := func(ops []struct {
		Addr uint8
		Val  uint16
	}) bool {
		b := NewBRAM16(256, nil)
		shadow := make([]uint16, 256)
		for _, op := range ops {
			b.Write(int(op.Addr), op.Val)
			b.Commit()
			shadow[op.Addr] = op.Val
			b.ReadA(int(op.Addr))
			b.Commit()
			if b.DoutA() != shadow[op.Addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTraceRecordsChangesOnly(t *testing.T) {
	tr := NewTrace()
	tr.Sample(0, "state", 1)
	tr.Sample(1, "state", 1) // no change
	tr.Sample(2, "state", 2)
	tr.Sample(2, "acc", 7)
	if tr.Len() != 3 {
		t.Fatalf("events = %d, want 3", tr.Len())
	}
	if got := tr.Signals(); len(got) != 2 || got[0] != "acc" || got[1] != "state" {
		t.Fatalf("signals = %v", got)
	}
	s := tr.String()
	if !strings.Contains(s, "@2 state=2") || !strings.Contains(s, "@0 state=1") {
		t.Fatalf("trace dump = %q", s)
	}
}

func TestTraceLimit(t *testing.T) {
	tr := NewTrace()
	tr.Limit = 4
	for i := 0; i < 10; i++ {
		tr.Sample(uint64(i), "x", uint64(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("limited trace holds %d events", tr.Len())
	}
	if tr.Events()[0].Value != 6 {
		t.Fatalf("oldest kept event = %+v", tr.Events()[0])
	}
}
