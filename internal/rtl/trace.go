package rtl

import (
	"fmt"
	"sort"
	"strings"
)

// Event is one recorded signal change.
type Event struct {
	Cycle  uint64
	Signal string
	Value  uint64
}

// Trace records signal changes for debugging FSMs, a lightweight stand-in
// for a VCD waveform dump. Recording only changes keeps traces compact
// over long runs.
type Trace struct {
	events []Event
	last   map[string]uint64
	// Limit bounds the number of stored events; 0 means unlimited.
	// When exceeded, the oldest events are dropped.
	Limit int
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{last: make(map[string]uint64)} }

// Sample records signal=value at cycle if it differs from the last
// recorded value of that signal.
func (t *Trace) Sample(cycle uint64, signal string, value uint64) {
	if v, ok := t.last[signal]; ok && v == value {
		return
	}
	t.last[signal] = value
	t.events = append(t.events, Event{Cycle: cycle, Signal: signal, Value: value})
	if t.Limit > 0 && len(t.events) > t.Limit {
		t.events = t.events[len(t.events)-t.Limit:]
	}
}

// Events returns the recorded changes in order.
func (t *Trace) Events() []Event { return t.events }

// Len returns the number of recorded changes.
func (t *Trace) Len() int { return len(t.events) }

// Signals returns the distinct signal names seen, sorted.
func (t *Trace) Signals() []string {
	out := make([]string, 0, len(t.last))
	for s := range t.last {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// String renders the trace as one line per change: "@cycle signal=value".
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.events {
		fmt.Fprintf(&b, "@%d %s=%d\n", e.Cycle, e.Signal, e.Value)
	}
	return b.String()
}
