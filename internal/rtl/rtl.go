// Package rtl is a small clocked-simulation kit for modeling synchronous
// digital hardware at cycle accuracy. It provides the primitives the
// paper's retrieval unit is built from — registers, synchronous block
// RAMs matching Virtex-II BRAM semantics (address sampled at the clock
// edge, data valid the following cycle), 18×18 hardware multipliers with
// registered products — plus a two-phase simulator that advances them in
// lock-step.
//
// The two-phase discipline mirrors synthesis semantics: during Compute a
// component reads only the *current* (Q) outputs of other components and
// schedules its next state; during Commit every component latches its
// scheduled state simultaneously. Reading another component's output
// therefore always observes the value it held at the last clock edge,
// never a value computed in the same cycle — exactly like flip-flop to
// flip-flop paths in RTL.
package rtl

import (
	"errors"
	"fmt"
)

// Component is a synchronous hardware block.
type Component interface {
	// Compute evaluates combinational logic and schedules state
	// updates. It must not change any externally visible output.
	Compute()
	// Commit latches the scheduled state, like a rising clock edge.
	Commit()
}

// ErrMaxCycles is returned by Simulator.Run when the cycle budget is
// exhausted before the done condition holds — the simulation analogue of
// a hung FSM.
var ErrMaxCycles = errors.New("rtl: cycle budget exhausted")

// Simulator drives a set of components with a common clock.
type Simulator struct {
	comps []Component
	cycle uint64
}

// NewSimulator returns an empty simulator.
func NewSimulator() *Simulator { return &Simulator{} }

// Add registers components with the clock tree.
func (s *Simulator) Add(cs ...Component) {
	s.comps = append(s.comps, cs...)
}

// Cycle returns the number of elapsed clock cycles.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// Step advances the simulation by one clock cycle.
func (s *Simulator) Step() {
	for _, c := range s.comps {
		c.Compute()
	}
	for _, c := range s.comps {
		c.Commit()
	}
	s.cycle++
}

// Run steps the clock until done reports true (checked after each edge)
// or max cycles elapse. It returns the cycles consumed by this call.
func (s *Simulator) Run(done func() bool, max uint64) (uint64, error) {
	start := s.cycle
	for !done() {
		if s.cycle-start >= max {
			return s.cycle - start, fmt.Errorf("%w after %d cycles", ErrMaxCycles, max)
		}
		s.Step()
	}
	return s.cycle - start, nil
}

// Reg is a D-type register of any value type. Q is the output visible to
// other logic; Set schedules the D input for the next edge. A Reg keeps
// its value when Set is not called during a cycle (clock-enable
// behavior).
type Reg[T any] struct {
	q, d    T
	pending bool
}

// NewReg returns a register initialized (reset) to v.
func NewReg[T any](v T) *Reg[T] { return &Reg[T]{q: v, d: v} }

// Q returns the register output as of the last clock edge.
func (r *Reg[T]) Q() T { return r.q }

// Set schedules v to be latched at the next Commit.
func (r *Reg[T]) Set(v T) { r.d = v; r.pending = true }

// Reset forces the output immediately, modeling an asynchronous reset.
func (r *Reg[T]) Reset(v T) { r.q = v; r.d = v; r.pending = false }

// Compute implements Component (registers have no combinational work).
func (r *Reg[T]) Compute() {}

// Commit implements Component.
func (r *Reg[T]) Commit() {
	if r.pending {
		r.q = r.d
		r.pending = false
	}
}
