package rtl

// BRAM16 models a Virtex-II block RAM configured as a 16-bit-wide
// true-dual-port memory with synchronous reads: an address presented
// through ReadA/ReadB during one cycle yields its data on DoutA/DoutB
// after the following clock edge. The paper's retrieval unit uses two
// such BRAMs — one holding the case-base image (CB-MEM), one the request
// list (Req-MEM) — see fig. 7 and Table 2 ("BRAMS(18Kbit): 2 of 96").
//
// Port B exists for the §5 block-compact extension: fetching an
// (ID, value) pair in a single cycle through both ports. The baseline
// unit drives port A only.
type BRAM16 struct {
	mem []uint16

	doutA, doutB         uint16
	addrA, addrB         int
	pendA, pendB         bool
	wrAddr               int
	wrData               uint16
	pendW                bool
	reads, writes, waste uint64
}

// NewBRAM16 returns a BRAM of the given word depth preloaded with init
// (remaining words are zero, as configuration would leave them).
func NewBRAM16(depth int, init []uint16) *BRAM16 {
	b := &BRAM16{mem: make([]uint16, depth)}
	copy(b.mem, init)
	return b
}

// Depth returns the word capacity.
func (b *BRAM16) Depth() int { return len(b.mem) }

// LoadBurst overwrites memory from addr with words, modeling a host
// write burst (one word per cycle on the write port). It returns the
// number of cycles such a burst occupies. Words beyond the capacity are
// dropped, like writes past the decoded range.
func (b *BRAM16) LoadBurst(addr int, words []uint16) int {
	for i, w := range words {
		if a := addr + i; a >= 0 && a < len(b.mem) {
			b.mem[a] = w
			b.writes++
		}
	}
	return len(words)
}

// ReadA presents addr on port A; the data appears on DoutA after the
// next clock edge. Out-of-range addresses read as zero, like an
// uninitialized BRAM word.
func (b *BRAM16) ReadA(addr int) { b.addrA = addr; b.pendA = true }

// ReadB presents addr on port B (block-compact fetch only).
func (b *BRAM16) ReadB(addr int) { b.addrB = addr; b.pendB = true }

// Write schedules a synchronous write through port A's write logic.
func (b *BRAM16) Write(addr int, v uint16) { b.wrAddr, b.wrData, b.pendW = addr, v, true }

// DoutA returns port A's registered read data.
func (b *BRAM16) DoutA() uint16 { return b.doutA }

// DoutB returns port B's registered read data.
func (b *BRAM16) DoutB() uint16 { return b.doutB }

// Reads returns the number of read-port activations, the unit for
// memory-bound cycle accounting.
func (b *BRAM16) Reads() uint64 { return b.reads }

// Writes returns the number of committed writes.
func (b *BRAM16) Writes() uint64 { return b.writes }

func (b *BRAM16) at(addr int) uint16 {
	if addr < 0 || addr >= len(b.mem) {
		return 0
	}
	return b.mem[addr]
}

// Compute implements Component.
func (b *BRAM16) Compute() {}

// Commit implements Component: latch read data, apply writes.
func (b *BRAM16) Commit() {
	if b.pendW {
		if b.wrAddr >= 0 && b.wrAddr < len(b.mem) {
			b.mem[b.wrAddr] = b.wrData
		}
		b.writes++
		b.pendW = false
	}
	if b.pendA {
		b.doutA = b.at(b.addrA)
		b.reads++
		b.pendA = false
	}
	if b.pendB {
		b.doutB = b.at(b.addrB)
		b.reads++
		b.pendB = false
	}
}

// Mult18 models a Virtex-II MULT18X18 dedicated multiplier with a
// registered product: operands presented during a cycle produce their
// product after the clock edge. Table 2 reports the retrieval unit uses
// two of them (d×recip and w×s, fig. 7).
type Mult18 struct {
	a, b    uint32
	p       uint64
	pending bool
	uses    uint64
}

// Set presents the operands (treated as unsigned, ≤18 bits significant;
// the retrieval datapath only multiplies non-negative quantities).
func (m *Mult18) Set(a, b uint32) {
	m.a, m.b = a&0x3FFFF, b&0x3FFFF
	m.pending = true
}

// P returns the registered product.
func (m *Mult18) P() uint64 { return m.p }

// Uses returns how many products were computed, for activity-based power
// or utilization estimates.
func (m *Mult18) Uses() uint64 { return m.uses }

// Compute implements Component.
func (m *Mult18) Compute() {}

// Commit implements Component.
func (m *Mult18) Commit() {
	if m.pending {
		m.p = uint64(m.a) * uint64(m.b)
		m.uses++
		m.pending = false
	}
}
