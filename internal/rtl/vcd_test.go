package rtl

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteVCDBasic(t *testing.T) {
	tr := NewTrace()
	tr.Sample(0, "state", 1)
	tr.Sample(0, "acc", 0)
	tr.Sample(3, "state", 2)
	tr.Sample(5, "acc", 32767)

	var buf bytes.Buffer
	if err := WriteVCD(&buf, tr, "retrieval"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale", "$scope module retrieval $end",
		"$var wire 64 ! acc $end", "$var wire 64 \" state $end",
		"$enddefinitions $end",
		"#0", "#3", "#5",
		"b111111111111111 !", // 32767 on acc's code
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Time markers in ascending order.
	if strings.Index(out, "#0") > strings.Index(out, "#3") ||
		strings.Index(out, "#3") > strings.Index(out, "#5") {
		t.Error("time markers out of order")
	}
}

func TestWriteVCDEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVCD(&buf, NewTrace(), "m"); err == nil {
		t.Error("empty trace must error")
	}
}

func TestWriteVCDDefaultModule(t *testing.T) {
	tr := NewTrace()
	tr.Sample(0, "x", 1)
	var buf bytes.Buffer
	if err := WriteVCD(&buf, tr, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "$scope module rtl $end") {
		t.Error("default module name missing")
	}
}

func TestVCDIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		id := vcdID(i)
		if id == "" || seen[id] {
			t.Fatalf("vcdID(%d) = %q duplicate or empty", i, id)
		}
		seen[id] = true
		for _, r := range id {
			if r < '!' || r > '~' {
				t.Fatalf("vcdID(%d) contains non-printable %q", i, r)
			}
		}
	}
}
