package casebase

import (
	"fmt"
	"sort"

	"qosalloc/internal/attr"
)

// Constraint is one requested QoS attribute with its weighting factor, the
// (ID, value, weight) triple of the request list structure (fig. 4 left).
// Weight is a float in [0, 1]; the retrieval engines normalize or convert
// to Q15 as needed. The paper's example uses equal weights w_i = 1/3.
type Constraint struct {
	ID     attr.ID
	Value  attr.Value
	Weight float64
}

// Request is a function request description (fig. 3): the desired basic
// function type plus a — possibly incomplete — list of constraining
// attributes. "The request's attribute-set does not have to be completely
// specified; incomplete subsets are possible as well which is a nice
// property of case-based retrieval" (§3).
type Request struct {
	Type        TypeID
	Constraints []Constraint
}

// NewRequest returns a request for function type t with the given
// constraints, sorted by attribute ID as the list layout requires.
func NewRequest(t TypeID, cs ...Constraint) Request {
	out := Request{Type: t, Constraints: append([]Constraint(nil), cs...)}
	sort.Slice(out.Constraints, func(i, j int) bool {
		return out.Constraints[i].ID < out.Constraints[j].ID
	})
	return out
}

// EqualWeights returns a copy of r with every constraint weighted 1/n.
func (r Request) EqualWeights() Request {
	out := Request{Type: r.Type, Constraints: append([]Constraint(nil), r.Constraints...)}
	if n := len(out.Constraints); n > 0 {
		w := 1.0 / float64(n)
		for i := range out.Constraints {
			out.Constraints[i].Weight = w
		}
	}
	return out
}

// NormalizeWeights returns a copy of r with weights rescaled to sum to 1,
// the eq. (2) side condition. Requests whose weights sum to zero get
// equal weights instead.
func (r Request) NormalizeWeights() Request {
	out := Request{Type: r.Type, Constraints: append([]Constraint(nil), r.Constraints...)}
	var sum float64
	for _, c := range out.Constraints {
		if c.Weight > 0 {
			sum += c.Weight
		}
	}
	if sum == 0 {
		return r.EqualWeights()
	}
	for i := range out.Constraints {
		if out.Constraints[i].Weight < 0 {
			out.Constraints[i].Weight = 0
		}
		out.Constraints[i].Weight /= sum
	}
	return out
}

// Validate checks the request against the registry and the case base:
// the function type must be offered ("the application's functional
// requirements should already be known at design time", §3), constraints
// must reference known attributes within bounds and be free of
// duplicates.
func (r Request) Validate(cb *CaseBase) error {
	if _, ok := cb.Type(r.Type); !ok {
		return fmt.Errorf("casebase: request for unknown function type %d", r.Type)
	}
	if len(r.Constraints) == 0 {
		return fmt.Errorf("casebase: request for type %d has no constraints", r.Type)
	}
	seen := map[attr.ID]bool{}
	for _, c := range r.Constraints {
		if seen[c.ID] {
			return fmt.Errorf("casebase: duplicate constraint on attribute %d", c.ID)
		}
		seen[c.ID] = true
		if err := cb.Registry().Validate(attr.Pair{ID: c.ID, Value: c.Value}); err != nil {
			return err
		}
		if c.Weight < 0 || c.Weight > 1 {
			return fmt.Errorf("casebase: constraint on attribute %d has weight %v outside [0,1]", c.ID, c.Weight)
		}
	}
	return nil
}

// Relax returns a copy of r with the constraint on id removed, the
// "repeat its request with rather relaxed constraints" path of §3. The
// remaining weights are renormalized. ok is false when id was not
// constrained.
func (r Request) Relax(id attr.ID) (Request, bool) {
	out := Request{Type: r.Type}
	found := false
	for _, c := range r.Constraints {
		if c.ID == id {
			found = true
			continue
		}
		out.Constraints = append(out.Constraints, c)
	}
	if !found {
		return r, false
	}
	return out.NormalizeWeights(), true
}
