// Package casebase models the function implementation tree of the paper
// (fig. 3 / fig. 5): a hierarchy whose top level enumerates the offered
// basic function types and whose lower levels describe, per type, the
// available implementation variants with their QoS attribute sets.
//
// The case base is a design-time artifact: "such metrics which characterize
// a functionality on QoS-aspects have to be pre-defined by the designer as
// a set of attributes whose values are derived from simulations and tests
// of the function's model" (§3). At run time it is read-only for
// retrieval; dynamic update is the paper's future work and is supported
// here through the Builder so a self-learning layer can regenerate it.
package casebase

import (
	"errors"
	"fmt"
	"sort"

	"qosalloc/internal/attr"
)

// TypeID identifies a basic function type system-wide ("global
// function-ID", §3). 0 and 0xFFFF are reserved as list terminators.
type TypeID uint16

// ImplID identifies one implementation variant. The paper allows "a unique
// system-global or a local ID value"; we use values unique within their
// function type, which is what the memory image encodes.
type ImplID uint16

// Target names the execution resource class of an implementation variant,
// matching the paper's example targets (FPGA, DSP, general-purpose
// processor).
type Target uint8

const (
	// TargetFPGA marks a partial bitstream for a reconfigurable device.
	TargetFPGA Target = iota
	// TargetDSP marks a DSP binary.
	TargetDSP
	// TargetGPP marks a software task for a general-purpose processor
	// (including soft cores like the MicroBlaze).
	TargetGPP
)

// String returns the conventional short target name.
func (t Target) String() string {
	switch t {
	case TargetFPGA:
		return "FPGA"
	case TargetDSP:
		return "DSP"
	case TargetGPP:
		return "GP-Proc"
	default:
		return fmt.Sprintf("Target(%d)", uint8(t))
	}
}

// Footprint describes what an implementation consumes when instantiated.
// The retrieval step ignores it; the allocation manager uses it for the
// feasibility check against current system load (§2, §3). ConfigBytes is
// the size of the configuration data (CPU opcode / FPGA bitstream) held in
// the global function repository.
type Footprint struct {
	Slices      int // CLB slices on FPGA targets
	BRAMs       int // block RAMs on FPGA targets
	Multipliers int // dedicated multipliers on FPGA targets
	CPULoad     int // permille of a processor for DSP/GPP targets
	MemBytes    int // working memory for DSP/GPP targets
	PowerMW     int // estimated power consumption, milliwatts
	ConfigBytes int // bitstream/opcode size in the repository
}

// Implementation is one variant of a function type: a target, its QoS
// attribute set (pre-sorted by attribute ID) and its resource footprint.
type Implementation struct {
	ID     ImplID
	Name   string
	Target Target
	Attrs  []attr.Pair
	Foot   Footprint
}

// Attr returns the value of attribute id, with ok=false when the variant
// does not describe that attribute ("a missing attribute can be seen as
// unsatisfiable requirement", §3).
func (im *Implementation) Attr(id attr.ID) (attr.Value, bool) {
	// Attrs is sorted; binary search keeps large attribute sets cheap.
	i := sort.Search(len(im.Attrs), func(i int) bool { return im.Attrs[i].ID >= id })
	if i < len(im.Attrs) && im.Attrs[i].ID == id {
		return im.Attrs[i].Value, true
	}
	return 0, false
}

// FunctionType is one node of the top-level list: a basic function type
// and its implementation variants, sorted by implementation ID.
type FunctionType struct {
	ID    TypeID
	Name  string
	Impls []Implementation
}

// Impl returns the variant with the given ID.
func (ft *FunctionType) Impl(id ImplID) (*Implementation, bool) {
	for i := range ft.Impls {
		if ft.Impls[i].ID == id {
			return &ft.Impls[i], true
		}
	}
	return nil, false
}

// CaseBase is the complete, validated implementation tree together with
// the attribute registry that defines the design-global value bounds.
type CaseBase struct {
	registry *attr.Registry
	types    []FunctionType // sorted by TypeID
	byID     map[TypeID]int
}

// Registry returns the attribute registry the case base was built
// against.
func (cb *CaseBase) Registry() *attr.Registry { return cb.registry }

// Types returns the function types in ascending TypeID order. The slice
// is shared; callers must not mutate it.
func (cb *CaseBase) Types() []FunctionType { return cb.types }

// Type returns the function type entry for id. Retrieval begins with this
// lookup ("as first step all function type entries have to be checked for
// finding the required type", §3).
func (cb *CaseBase) Type(id TypeID) (*FunctionType, bool) {
	i, ok := cb.byID[id]
	if !ok {
		return nil, false
	}
	return &cb.types[i], true
}

// NumTypes returns the number of basic function types offered.
func (cb *CaseBase) NumTypes() int { return len(cb.types) }

// NumImpls returns the total number of implementation variants.
func (cb *CaseBase) NumImpls() int {
	n := 0
	for i := range cb.types {
		n += len(cb.types[i].Impls)
	}
	return n
}

// Stats summarizes case-base shape; used for capacity planning against
// Table 3.
type Stats struct {
	Types        int
	Impls        int
	Attrs        int
	MaxImpls     int // max implementations within one type
	MaxAttrs     int // max attributes within one implementation
	AttrTypeUniv int // distinct attribute types referenced
}

// Stats computes summary statistics of the tree.
func (cb *CaseBase) Stats() Stats {
	s := Stats{Types: len(cb.types)}
	universe := map[attr.ID]bool{}
	for i := range cb.types {
		ft := &cb.types[i]
		s.Impls += len(ft.Impls)
		if len(ft.Impls) > s.MaxImpls {
			s.MaxImpls = len(ft.Impls)
		}
		for j := range ft.Impls {
			im := &ft.Impls[j]
			s.Attrs += len(im.Attrs)
			if len(im.Attrs) > s.MaxAttrs {
				s.MaxAttrs = len(im.Attrs)
			}
			for _, p := range im.Attrs {
				universe[p.ID] = true
			}
		}
	}
	s.AttrTypeUniv = len(universe)
	return s
}

// Builder accumulates function types and implementations and validates
// them into an immutable CaseBase.
type Builder struct {
	registry *attr.Registry
	types    map[TypeID]*FunctionType
	order    []TypeID
	errs     []error
}

// NewBuilder returns a Builder validating against reg. The registry
// should be sealed before Build; Build seals it otherwise.
func NewBuilder(reg *attr.Registry) *Builder {
	return &Builder{registry: reg, types: make(map[TypeID]*FunctionType)}
}

// AddType declares a function type. Duplicate or reserved IDs are
// recorded as errors reported by Build.
func (b *Builder) AddType(id TypeID, name string) *Builder {
	if id == 0 || id == 0xFFFF {
		b.errs = append(b.errs, fmt.Errorf("casebase: type ID %d is reserved", id))
		return b
	}
	if _, dup := b.types[id]; dup {
		b.errs = append(b.errs, fmt.Errorf("casebase: duplicate function type %d", id))
		return b
	}
	b.types[id] = &FunctionType{ID: id, Name: name}
	b.order = append(b.order, id)
	return b
}

// AddImpl attaches an implementation variant to a previously declared
// type. Attribute pairs are sorted by ID here; validation happens in
// Build.
func (b *Builder) AddImpl(t TypeID, im Implementation) *Builder {
	ft, ok := b.types[t]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("casebase: AddImpl for undeclared type %d", t))
		return b
	}
	if im.ID == 0 || im.ID == 0xFFFF {
		b.errs = append(b.errs, fmt.Errorf("casebase: impl ID %d is reserved (type %d)", im.ID, t))
		return b
	}
	if _, dup := ft.Impl(im.ID); dup {
		b.errs = append(b.errs, fmt.Errorf("casebase: duplicate impl %d in type %d", im.ID, t))
		return b
	}
	im.Attrs = append([]attr.Pair(nil), im.Attrs...)
	attr.SortPairs(im.Attrs)
	ft.Impls = append(ft.Impls, im)
	return b
}

// Build validates everything and returns the immutable case base:
//   - every attribute pair references a defined attribute type and lies
//     within its design-global bounds;
//   - attribute lists are strictly ascending (one value per type);
//   - every function type offers at least one implementation (§3: "it
//     should not happen that the desired type is not found").
func (b *Builder) Build() (*CaseBase, error) {
	errs := append([]error(nil), b.errs...)
	cb := &CaseBase{registry: b.registry, byID: make(map[TypeID]int)}
	ids := append([]TypeID(nil), b.order...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ft := b.types[id]
		if len(ft.Impls) == 0 {
			errs = append(errs, fmt.Errorf("casebase: function type %d (%s) has no implementations", ft.ID, ft.Name))
		}
		sort.Slice(ft.Impls, func(i, j int) bool { return ft.Impls[i].ID < ft.Impls[j].ID })
		for i := range ft.Impls {
			im := &ft.Impls[i]
			if err := attr.CheckSorted(im.Attrs); err != nil {
				errs = append(errs, fmt.Errorf("casebase: type %d impl %d: %w", ft.ID, im.ID, err))
			}
			for _, p := range im.Attrs {
				if err := b.registry.Validate(p); err != nil {
					errs = append(errs, fmt.Errorf("casebase: type %d impl %d: %w", ft.ID, im.ID, err))
				}
			}
		}
		cb.byID[ft.ID] = len(cb.types)
		cb.types = append(cb.types, *ft)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if !b.registry.Sealed() {
		b.registry.Seal()
	}
	return cb, nil
}
