package casebase

import (
	"testing"

	"qosalloc/internal/attr"
)

func TestPaperCaseBaseBuilds(t *testing.T) {
	cb, err := PaperCaseBase()
	if err != nil {
		t.Fatalf("PaperCaseBase: %v", err)
	}
	if cb.NumTypes() != 2 {
		t.Errorf("NumTypes = %d, want 2 (FIR equalizer, 1D-FFT)", cb.NumTypes())
	}
	if cb.NumImpls() != 5 {
		t.Errorf("NumImpls = %d, want 5", cb.NumImpls())
	}
	ft, ok := cb.Type(TypeFIREqualizer)
	if !ok {
		t.Fatal("FIR equalizer type missing")
	}
	if len(ft.Impls) != 3 {
		t.Fatalf("FIR equalizer has %d impls, want 3", len(ft.Impls))
	}
	// Fig. 3 values, spot-checked.
	dsp, ok := ft.Impl(2)
	if !ok || dsp.Target != TargetDSP {
		t.Fatal("impl 2 should be the DSP variant")
	}
	if v, ok := dsp.Attr(AttrOutputMode); !ok || v != 1 {
		t.Errorf("DSP output mode = %d,%v, want 1 (stereo)", v, ok)
	}
	gpp, _ := ft.Impl(3)
	if v, ok := gpp.Attr(AttrSampleRate); !ok || v != 22 {
		t.Errorf("GPP sample rate = %d,%v, want 22", v, ok)
	}
}

func TestImplAttrMissing(t *testing.T) {
	cb, _ := PaperCaseBase()
	ft, _ := cb.Type(Type1DFFT)
	im, _ := ft.Impl(1)
	if _, ok := im.Attr(AttrOutputMode); ok {
		t.Error("FFT FPGA variant should not define output-mode")
	}
	if v, ok := im.Attr(AttrBitwidth); !ok || v != 16 {
		t.Errorf("Attr(bitwidth) = %d,%v", v, ok)
	}
}

func TestTypeLookupMiss(t *testing.T) {
	cb, _ := PaperCaseBase()
	if _, ok := cb.Type(999); ok {
		t.Error("lookup of unknown type must fail")
	}
}

func TestStats(t *testing.T) {
	cb, _ := PaperCaseBase()
	s := cb.Stats()
	if s.Types != 2 || s.Impls != 5 {
		t.Errorf("Stats = %+v", s)
	}
	if s.MaxImpls != 3 {
		t.Errorf("MaxImpls = %d, want 3", s.MaxImpls)
	}
	if s.MaxAttrs != 4 {
		t.Errorf("MaxAttrs = %d, want 4", s.MaxAttrs)
	}
	if s.AttrTypeUniv != 4 {
		t.Errorf("AttrTypeUniv = %d, want 4", s.AttrTypeUniv)
	}
}

func TestBuilderRejectsReservedTypeID(t *testing.T) {
	for _, id := range []TypeID{0, 0xFFFF} {
		b := NewBuilder(PaperRegistry())
		b.AddType(id, "bad")
		if _, err := b.Build(); err == nil {
			t.Errorf("type ID %d must be rejected", id)
		}
	}
}

func TestBuilderRejectsDuplicateType(t *testing.T) {
	b := NewBuilder(PaperRegistry())
	b.AddType(1, "a").AddType(1, "b")
	b.AddImpl(1, Implementation{ID: 1})
	if _, err := b.Build(); err == nil {
		t.Error("duplicate type must be rejected")
	}
}

func TestBuilderRejectsEmptyType(t *testing.T) {
	b := NewBuilder(PaperRegistry())
	b.AddType(1, "empty")
	if _, err := b.Build(); err == nil {
		t.Error("type without implementations must be rejected")
	}
}

func TestBuilderRejectsUndeclaredType(t *testing.T) {
	b := NewBuilder(PaperRegistry())
	b.AddImpl(42, Implementation{ID: 1})
	if _, err := b.Build(); err == nil {
		t.Error("AddImpl to undeclared type must be rejected")
	}
}

func TestBuilderRejectsDuplicateImpl(t *testing.T) {
	b := NewBuilder(PaperRegistry())
	b.AddType(1, "t")
	b.AddImpl(1, Implementation{ID: 5})
	b.AddImpl(1, Implementation{ID: 5})
	if _, err := b.Build(); err == nil {
		t.Error("duplicate impl ID must be rejected")
	}
}

func TestBuilderRejectsReservedImplID(t *testing.T) {
	b := NewBuilder(PaperRegistry())
	b.AddType(1, "t")
	b.AddImpl(1, Implementation{ID: 0xFFFF})
	if _, err := b.Build(); err == nil {
		t.Error("reserved impl ID must be rejected")
	}
}

func TestBuilderRejectsOutOfBoundsAttr(t *testing.T) {
	b := NewBuilder(PaperRegistry())
	b.AddType(1, "t")
	b.AddImpl(1, Implementation{ID: 1, Attrs: []attr.Pair{{ID: AttrBitwidth, Value: 64}}})
	if _, err := b.Build(); err == nil {
		t.Error("out-of-bounds attribute must be rejected")
	}
}

func TestBuilderRejectsUnknownAttr(t *testing.T) {
	b := NewBuilder(PaperRegistry())
	b.AddType(1, "t")
	b.AddImpl(1, Implementation{ID: 1, Attrs: []attr.Pair{{ID: 99, Value: 1}}})
	if _, err := b.Build(); err == nil {
		t.Error("unknown attribute ID must be rejected")
	}
}

func TestBuilderSortsImplAttrs(t *testing.T) {
	b := NewBuilder(PaperRegistry())
	b.AddType(1, "t")
	b.AddImpl(1, Implementation{ID: 1, Attrs: []attr.Pair{
		{ID: AttrSampleRate, Value: 44},
		{ID: AttrBitwidth, Value: 16},
	}})
	cb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ft, _ := cb.Type(1)
	im, _ := ft.Impl(1)
	if im.Attrs[0].ID != AttrBitwidth {
		t.Errorf("attrs not sorted: %v", im.Attrs)
	}
}

func TestBuildSealsRegistry(t *testing.T) {
	reg := PaperRegistry()
	b := NewBuilder(reg)
	b.AddType(1, "t")
	b.AddImpl(1, Implementation{ID: 1, Attrs: []attr.Pair{{ID: AttrBitwidth, Value: 8}}})
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if !reg.Sealed() {
		t.Error("Build must seal the registry")
	}
}

func TestTargetString(t *testing.T) {
	if TargetFPGA.String() != "FPGA" || TargetDSP.String() != "DSP" || TargetGPP.String() != "GP-Proc" {
		t.Error("Target.String names wrong")
	}
}
