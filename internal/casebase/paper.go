package casebase

import "qosalloc/internal/attr"

// Attribute IDs of the paper's §3 example (fig. 3: ACB_1 ... ACB_4).
const (
	AttrBitwidth   attr.ID = 1 // processing bitwidth, bits
	AttrProcMode   attr.ID = 2 // 0 = integer, 1 = float
	AttrOutputMode attr.ID = 3 // 0 = mono, 1 = stereo, 2 = surround
	AttrSampleRate attr.ID = 4 // kSamples/s
)

// Function type IDs of fig. 3.
const (
	TypeFIREqualizer TypeID = 1
	Type1DFFT        TypeID = 2
)

// PaperRegistry returns the attribute registry of the §3 example with the
// design-global bounds that yield the Table 1 dmax values: bitwidth
// dmax = 16-8 = 8, output mode dmax = 2-0 = 2, sample rate dmax = 44-8 = 36.
// The processing-mode flag has dmax = 1.
func PaperRegistry() *attr.Registry {
	r := attr.NewRegistry()
	r.MustDefine(attr.Def{ID: AttrBitwidth, Name: "bitwidth", Unit: "bits", Kind: attr.Numeric, Lo: 8, Hi: 16})
	r.MustDefine(attr.Def{ID: AttrProcMode, Name: "proc-mode", Kind: attr.Flag, Lo: 0, Hi: 1,
		Symbols: []string{"integer", "float"}})
	r.MustDefine(attr.Def{ID: AttrOutputMode, Name: "output-mode", Kind: attr.Ordinal, Lo: 0, Hi: 2,
		Symbols: []string{"mono", "stereo", "surround"}})
	r.MustDefine(attr.Def{ID: AttrSampleRate, Name: "sample-rate", Unit: "kS/s", Kind: attr.Numeric, Lo: 8, Hi: 44})
	return r
}

// PaperCaseBase returns the fig. 3 implementation tree: an FIR-equalizer
// type with FPGA, DSP and GP-Proc variants (attribute values exactly as
// printed) plus the 1D-FFT type the figure shows as the next tree entry.
// Footprints are illustrative values consistent with the paper's system
// sketch; retrieval ignores them.
func PaperCaseBase() (*CaseBase, error) {
	reg := PaperRegistry()
	b := NewBuilder(reg)

	b.AddType(TypeFIREqualizer, "FIR Equalizer")
	b.AddImpl(TypeFIREqualizer, Implementation{
		ID: 1, Name: "fir-eq-fpga", Target: TargetFPGA,
		Attrs: []attr.Pair{
			{ID: AttrBitwidth, Value: 16},
			{ID: AttrProcMode, Value: 0},   // integer mode
			{ID: AttrOutputMode, Value: 2}, // surround
			{ID: AttrSampleRate, Value: 44},
		},
		Foot: Footprint{Slices: 920, BRAMs: 4, Multipliers: 8, PowerMW: 310, ConfigBytes: 96 * 1024},
	})
	b.AddImpl(TypeFIREqualizer, Implementation{
		ID: 2, Name: "fir-eq-dsp", Target: TargetDSP,
		Attrs: []attr.Pair{
			{ID: AttrBitwidth, Value: 16},
			{ID: AttrProcMode, Value: 0},   // integer mode
			{ID: AttrOutputMode, Value: 1}, // stereo
			{ID: AttrSampleRate, Value: 44},
		},
		Foot: Footprint{CPULoad: 450, MemBytes: 24 * 1024, PowerMW: 220, ConfigBytes: 18 * 1024},
	})
	b.AddImpl(TypeFIREqualizer, Implementation{
		ID: 3, Name: "fir-eq-gpp", Target: TargetGPP,
		Attrs: []attr.Pair{
			{ID: AttrBitwidth, Value: 8},
			{ID: AttrProcMode, Value: 0},   // integer mode
			{ID: AttrOutputMode, Value: 0}, // mono
			{ID: AttrSampleRate, Value: 22},
		},
		Foot: Footprint{CPULoad: 700, MemBytes: 8 * 1024, PowerMW: 150, ConfigBytes: 2 * 1024},
	})

	b.AddType(Type1DFFT, "1D-FFT")
	b.AddImpl(Type1DFFT, Implementation{
		ID: 1, Name: "fft-fpga", Target: TargetFPGA,
		Attrs: []attr.Pair{
			{ID: AttrBitwidth, Value: 16},
			{ID: AttrProcMode, Value: 0},
			{ID: AttrSampleRate, Value: 44},
		},
		Foot: Footprint{Slices: 1400, BRAMs: 6, Multipliers: 12, PowerMW: 380, ConfigBytes: 128 * 1024},
	})
	b.AddImpl(Type1DFFT, Implementation{
		ID: 2, Name: "fft-gpp", Target: TargetGPP,
		Attrs: []attr.Pair{
			{ID: AttrBitwidth, Value: 16},
			{ID: AttrProcMode, Value: 1}, // float
			{ID: AttrSampleRate, Value: 22},
		},
		Foot: Footprint{CPULoad: 850, MemBytes: 32 * 1024, PowerMW: 160, ConfigBytes: 6 * 1024},
	})

	return b.Build()
}

// PaperRequest returns the fig. 3 function request: an FIR equalizer with
// bitwidth 16, stereo output and 40 kSamples/s, equally weighted
// (w_i = 1/3). The processing-mode attribute is deliberately left
// unconstrained, demonstrating incomplete request subsets.
func PaperRequest() Request {
	return NewRequest(TypeFIREqualizer,
		Constraint{ID: AttrBitwidth, Value: 16},
		Constraint{ID: AttrOutputMode, Value: 1}, // stereo
		Constraint{ID: AttrSampleRate, Value: 40},
	).EqualWeights()
}
