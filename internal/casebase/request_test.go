package casebase

import (
	"math"
	"testing"
)

func TestPaperRequestShape(t *testing.T) {
	r := PaperRequest()
	if r.Type != TypeFIREqualizer {
		t.Errorf("type = %d", r.Type)
	}
	if len(r.Constraints) != 3 {
		t.Fatalf("constraints = %d, want 3", len(r.Constraints))
	}
	for _, c := range r.Constraints {
		if math.Abs(c.Weight-1.0/3.0) > 1e-12 {
			t.Errorf("weight = %v, want 1/3", c.Weight)
		}
	}
	// Fig. 3: AReq_1=16, AReq_3=1, AReq_4=40; sorted ascending.
	if r.Constraints[0].ID != AttrBitwidth || r.Constraints[0].Value != 16 {
		t.Errorf("c0 = %+v", r.Constraints[0])
	}
	if r.Constraints[1].ID != AttrOutputMode || r.Constraints[1].Value != 1 {
		t.Errorf("c1 = %+v", r.Constraints[1])
	}
	if r.Constraints[2].ID != AttrSampleRate || r.Constraints[2].Value != 40 {
		t.Errorf("c2 = %+v", r.Constraints[2])
	}
}

func TestNewRequestSorts(t *testing.T) {
	r := NewRequest(1,
		Constraint{ID: AttrSampleRate, Value: 40},
		Constraint{ID: AttrBitwidth, Value: 16},
	)
	if r.Constraints[0].ID != AttrBitwidth {
		t.Errorf("constraints not sorted: %v", r.Constraints)
	}
}

func TestNormalizeWeights(t *testing.T) {
	r := NewRequest(1,
		Constraint{ID: AttrBitwidth, Value: 16, Weight: 2},
		Constraint{ID: AttrSampleRate, Value: 40, Weight: 6},
	).NormalizeWeights()
	if math.Abs(r.Constraints[0].Weight-0.25) > 1e-12 ||
		math.Abs(r.Constraints[1].Weight-0.75) > 1e-12 {
		t.Errorf("normalized weights = %v", r.Constraints)
	}
}

func TestNormalizeWeightsZeroSum(t *testing.T) {
	r := NewRequest(1,
		Constraint{ID: AttrBitwidth, Value: 16},
		Constraint{ID: AttrSampleRate, Value: 40},
	).NormalizeWeights()
	for _, c := range r.Constraints {
		if math.Abs(c.Weight-0.5) > 1e-12 {
			t.Errorf("zero-sum fallback should give equal weights, got %v", r.Constraints)
		}
	}
}

func TestValidateRequest(t *testing.T) {
	cb, _ := PaperCaseBase()
	if err := PaperRequest().Validate(cb); err != nil {
		t.Errorf("paper request rejected: %v", err)
	}
	bad := NewRequest(77, Constraint{ID: AttrBitwidth, Value: 16, Weight: 1})
	if err := bad.Validate(cb); err == nil {
		t.Error("unknown type must fail validation")
	}
	empty := NewRequest(TypeFIREqualizer)
	if err := empty.Validate(cb); err == nil {
		t.Error("empty constraint set must fail validation")
	}
	dup := Request{Type: TypeFIREqualizer, Constraints: []Constraint{
		{ID: AttrBitwidth, Value: 16, Weight: 0.5},
		{ID: AttrBitwidth, Value: 8, Weight: 0.5},
	}}
	if err := dup.Validate(cb); err == nil {
		t.Error("duplicate constraint must fail validation")
	}
	oob := NewRequest(TypeFIREqualizer, Constraint{ID: AttrBitwidth, Value: 200, Weight: 1})
	if err := oob.Validate(cb); err == nil {
		t.Error("out-of-bounds value must fail validation")
	}
	badW := NewRequest(TypeFIREqualizer, Constraint{ID: AttrBitwidth, Value: 16, Weight: 1.5})
	if err := badW.Validate(cb); err == nil {
		t.Error("weight > 1 must fail validation")
	}
}

func TestRelax(t *testing.T) {
	r := PaperRequest()
	relaxed, ok := r.Relax(AttrSampleRate)
	if !ok {
		t.Fatal("Relax should find the sample-rate constraint")
	}
	if len(relaxed.Constraints) != 2 {
		t.Fatalf("relaxed constraints = %d, want 2", len(relaxed.Constraints))
	}
	var sum float64
	for _, c := range relaxed.Constraints {
		sum += c.Weight
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("relaxed weights sum to %v, want 1", sum)
	}
	if _, ok := r.Relax(99); ok {
		t.Error("Relax of unconstrained attribute should report false")
	}
	// Original is untouched.
	if len(r.Constraints) != 3 {
		t.Error("Relax must not mutate the original request")
	}
}

func TestEqualWeightsEmpty(t *testing.T) {
	r := NewRequest(1).EqualWeights()
	if len(r.Constraints) != 0 {
		t.Error("empty request should stay empty")
	}
}
