package qosalloc_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesRun executes every example binary end to end: each must
// exit zero within its budget and print something. This keeps the
// documented entry points working as the library evolves.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run the go tool; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 6 {
		t.Fatalf("expected at least 6 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
