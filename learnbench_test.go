package qosalloc

// Live-mutation serving benchmark (DESIGN.md §14). BenchmarkServeUnderChurn
// reports the batched read path frozen, with learning enabled but idle,
// and under a steady mutation/commit load, all under the normal -bench
// flow. TestServeLearnReadPathNoRegression is the `make bench-learn` CI
// gate — it measures the frozen and learning-idle read paths with
// testing.Benchmark, FAILS if enabling the epoch-snapshot layer slows
// the read path beyond noise, and refreshes BENCH_learn_churn.json when
// pointed at an output file.

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/learn"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/serve"
	"qosalloc/internal/workload"
)

// learnBenchFixtures is the Table-3 capacity point with the repeat-heavy
// stream BenchmarkServeBatch uses (internal/serve), rebuilt here against
// the public service constructor path.
func learnBenchFixtures(b *testing.B) (*casebase.CaseBase, []casebase.Request) {
	b.Helper()
	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
		N: 512, ConstraintsPer: 5, RepeatFraction: 0.5, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cb, reqs
}

func learnBenchService(b *testing.B, cb *casebase.CaseBase, lc serve.LearnConfig) *serve.Service {
	b.Helper()
	repo := device.NewRepository(64)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		b.Fatal(err)
	}
	sys := rtsys.NewSystem(repo,
		device.NewFPGA("fpga0", []device.Slot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		device.NewProcessor("dsp0", casebase.TargetDSP, 2000, 1<<20),
		device.NewProcessor("gpp0", casebase.TargetGPP, 2000, 1<<21),
	)
	return serve.New(cb, sys, serve.Config{Shards: 8, MaxBatch: 64, Learning: lc})
}

// streamOnce pushes the whole 512-request stream through the service as
// 64-request micro-batches — one benchmark op.
func streamOnce(b *testing.B, s *serve.Service, reqs []casebase.Request) {
	ctx := context.Background()
	for lo := 0; lo < len(reqs); lo += 64 {
		out, err := s.RetrieveBatch(ctx, reqs[lo:lo+64])
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range out {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

// churnOnce lands 16 observations and forces one commit — the steady
// mutation load riding along with each streamed op.
func churnOnce(b *testing.B, s *serve.Service, cb *casebase.CaseBase, rng *rand.Rand) {
	types := cb.Types()
	for i := 0; i < 16; i++ {
		ft := types[rng.Intn(len(types))]
		im := ft.Impls[rng.Intn(len(ft.Impls))]
		p := im.Attrs[rng.Intn(len(im.Attrs))]
		err := s.Observe(learn.Observation{Type: ft.ID, Impl: im.ID,
			Measured: []attr.Pair{{ID: p.ID, Value: p.Value + attr.Value(rng.Intn(3))}}})
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, err := s.CommitNow(); err != nil {
		b.Fatal(err)
	}
}

// idleLearn enables the mutation API without tripping any commit: the
// read path pays only the epoch-snapshot indirection.
func idleLearn() serve.LearnConfig {
	return serve.LearnConfig{Enabled: true, Alpha: 0.5, FoldThreshold: 1 << 20}
}

// BenchmarkServeUnderChurn: the BenchmarkServeBatch stream frozen, with
// the mutation API enabled but idle, and with a 16-observation commit
// riding along every op. One op = the whole 512-request stream.
func BenchmarkServeUnderChurn(b *testing.B) {
	b.Run("frozen", func(b *testing.B) {
		cb, reqs := learnBenchFixtures(b)
		s := learnBenchService(b, cb, serve.LearnConfig{})
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			streamOnce(b, s, reqs)
		}
	})
	b.Run("learn-idle", func(b *testing.B) {
		cb, reqs := learnBenchFixtures(b)
		s := learnBenchService(b, cb, idleLearn())
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			streamOnce(b, s, reqs)
		}
	})
	b.Run("churn", func(b *testing.B) {
		cb, reqs := learnBenchFixtures(b)
		s := learnBenchService(b, cb, idleLearn())
		defer s.Close()
		rng := rand.New(rand.NewSource(5))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			streamOnce(b, s, reqs)
			churnOnce(b, s, cb, rng)
		}
		b.StopTimer()
		b.ReportMetric(float64(s.EpochStats().Commits)/float64(b.N), "commits/op")
	})
}

// learnBenchReport is the BENCH_learn_churn.json schema.
type learnBenchReport struct {
	Benchmark     string  `json:"benchmark"`
	Requests      int     `json:"requests"`
	Shards        int     `json:"shards"`
	FrozenNsPerOp int64   `json:"frozen_ns_per_op"`
	IdleNsPerOp   int64   `json:"learn_idle_ns_per_op"`
	ChurnNsPerOp  int64   `json:"churn_ns_per_op"`
	IdleOverhead  float64 `json:"idle_overhead"`  // idle / frozen
	ChurnOverhead float64 `json:"churn_overhead"` // churn / frozen
	ObsPerChurnOp int     `json:"observations_per_churn_op"`
	CommitsPerOp  float64 `json:"commits_per_churn_op"`
	MaxIdleRatio  float64 `json:"max_idle_ratio"` // the gate
}

// TestServeLearnReadPathNoRegression is the bench-learn gate. It is
// skipped unless QOS_BENCH_LEARN=1 so the regular suite stays fast and
// timing-independent; `make bench-learn` sets the variable. With
// QOS_BENCH_OUT set the measured report is written there
// (BENCH_learn_churn.json at the repo root is the committed copy).
func TestServeLearnReadPathNoRegression(t *testing.T) {
	if os.Getenv("QOS_BENCH_LEARN") != "1" {
		t.Skip("set QOS_BENCH_LEARN=1 (make bench-learn) to run the timing gate")
	}
	const maxIdleRatio = 1.25 // noise allowance for the snapshot indirection

	frozen := testing.Benchmark(func(b *testing.B) {
		cb, reqs := learnBenchFixtures(b)
		s := learnBenchService(b, cb, serve.LearnConfig{})
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			streamOnce(b, s, reqs)
		}
	})
	idle := testing.Benchmark(func(b *testing.B) {
		cb, reqs := learnBenchFixtures(b)
		s := learnBenchService(b, cb, idleLearn())
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			streamOnce(b, s, reqs)
		}
	})
	var commits float64
	churn := testing.Benchmark(func(b *testing.B) {
		cb, reqs := learnBenchFixtures(b)
		s := learnBenchService(b, cb, idleLearn())
		defer s.Close()
		rng := rand.New(rand.NewSource(5))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			streamOnce(b, s, reqs)
			churnOnce(b, s, cb, rng)
		}
		b.StopTimer()
		commits = float64(s.EpochStats().Commits) / float64(b.N)
	})

	frozenNs, idleNs, churnNs := frozen.NsPerOp(), idle.NsPerOp(), churn.NsPerOp()
	if frozenNs <= 0 || idleNs <= 0 || churnNs <= 0 {
		t.Fatalf("degenerate timings: frozen %d, idle %d, churn %d ns/op", frozenNs, idleNs, churnNs)
	}
	rep := learnBenchReport{
		Benchmark: "learn_churn", Requests: 512, Shards: 8,
		FrozenNsPerOp: frozenNs, IdleNsPerOp: idleNs, ChurnNsPerOp: churnNs,
		IdleOverhead:  float64(idleNs) / float64(frozenNs),
		ChurnOverhead: float64(churnNs) / float64(frozenNs),
		ObsPerChurnOp: 16, CommitsPerOp: commits,
		MaxIdleRatio: maxIdleRatio,
	}
	t.Logf("frozen %d ns/op, learn-idle %d ns/op (%.2fx), churn %d ns/op (%.2fx, %.1f commits/op)",
		frozenNs, idleNs, rep.IdleOverhead, churnNs, rep.ChurnOverhead, commits)
	if out := os.Getenv("QOS_BENCH_OUT"); out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if float64(idleNs) > float64(frozenNs)*maxIdleRatio {
		t.Fatalf("learning-idle read path (%d ns/op) regressed beyond noise over frozen (%d ns/op, limit %.2fx)",
			idleNs, frozenNs, maxIdleRatio)
	}
}
