package qosalloc

// Multi-tenant fleet facade (DESIGN.md §13): N simulated nodes — each
// its own repository, device set and runtime — behind one allocator
// that scores placements with the pure policy package and enforces
// per-tenant QoS-class budgets at admission. Construction uses the
// shared v2 Option vocabulary: WithThreshold/WithNBest/WithPowerWeight
// tune the fleet exactly as they tune a Manager, while WithFleetNode,
// WithTenant and WithClassBudget declare the fleet-only topology and
// tenancy. Declaration order is part of the replay contract.

import (
	"qosalloc/internal/admit"
	"qosalloc/internal/fleet"
)

// Fleet-layer types.
type (
	// Fleet allocates QoS functions across N simulated nodes for
	// competing tenants. Create with NewFleet; purely sim-time driven,
	// so runs replay bit-identically (see Fleet.ReplayHash).
	Fleet = fleet.Fleet
	// FleetNode is one node: a device set, runtime and repository.
	FleetNode = fleet.Node
	// FleetOptions is the explicit configuration behind the Options.
	FleetOptions = fleet.Options
	// FleetPlacement reports one cross-node placement.
	FleetPlacement = fleet.Placement
	// FleetRecovery is the fleet-level degrade-and-retry outcome for
	// one fault-stranded task.
	FleetRecovery = fleet.Recovery
	// FleetStats snapshots the fleet counters.
	FleetStats = fleet.Stats
	// QoSClass names a tenant service class bound to one ClassBudget.
	QoSClass = admit.QoSClass
	// ClassBudget is the integer resource envelope of one QoS class
	// (FPGA slices, BRAMs, reconfiguration bandwidth).
	ClassBudget = admit.ClassBudget
	// ErrBudgetExceeded is the typed per-tenant budget rejection.
	ErrBudgetExceeded = admit.ErrBudgetExceeded
	// BudgetLedger attributes platform usage to tenants and enforces
	// class budgets at admission time.
	BudgetLedger = admit.Ledger
)

// fleetNodeSpec, tenantBinding and classBudgetDef carry the fleet
// option state in declaration order (see config).
type fleetNodeSpec struct {
	name          string
	repoBandwidth int
	devs          []Device
}
type tenantBinding struct {
	tenant string
	class  QoSClass
}
type classBudgetDef struct {
	class  QoSClass
	budget ClassBudget
}

// WithFleetNode declares one fleet node with its repository streaming
// bandwidth (bytes per microsecond) and device set (fleet only).
// Node declaration order is part of the fleet's replay contract.
func WithFleetNode(name string, repoBandwidth int, devs ...Device) Option {
	return func(c *config) {
		c.fleetNodes = append(c.fleetNodes, fleetNodeSpec{name: name, repoBandwidth: repoBandwidth, devs: devs})
	}
}

// WithTenant binds a tenant to a QoS class (fleet only). Unbound
// tenants are admitted unmetered.
func WithTenant(tenant string, class QoSClass) Option {
	return func(c *config) {
		c.tenantBinds = append(c.tenantBinds, tenantBinding{tenant: tenant, class: class})
	}
}

// WithClassBudget defines (or replaces) a QoS class's resource budget
// (fleet only). A zero budget field leaves that dimension unmetered.
func WithClassBudget(class QoSClass, b ClassBudget) Option {
	return func(c *config) {
		c.classBudgets = append(c.classBudgets, classBudgetDef{class: class, budget: b})
	}
}

// NewFleet builds a multi-tenant fleet allocator over a case base:
//
//	fl, err := qosalloc.NewFleet(cb,
//		qosalloc.WithFleetNode("node0", 20, devsA...),
//		qosalloc.WithFleetNode("node1", 20, devsB...),
//		qosalloc.WithClassBudget("bronze", qosalloc.ClassBudget{Slices: 920}),
//		qosalloc.WithTenant("batch", "bronze"),
//		qosalloc.WithThreshold(0.7))
//	p, err := fl.Allocate("batch", "mp3", req, 5)
func NewFleet(cb *CaseBase, opts ...Option) (*Fleet, error) {
	c := buildConfig(opts)
	fl := fleet.New(cb, fleet.Options{
		Threshold:   c.serve.Manager.Threshold,
		NBest:       c.serve.Manager.NBest,
		PowerWeight: c.serve.Manager.PowerWeight,
	})
	fl.Instrument(c.reg)
	for _, b := range c.classBudgets {
		fl.Ledger().DefineClass(b.class, b.budget)
	}
	for _, tb := range c.tenantBinds {
		fl.Ledger().BindTenant(tb.tenant, tb.class)
	}
	for _, n := range c.fleetNodes {
		if _, err := fl.AddNode(n.name, n.repoBandwidth, n.devs...); err != nil {
			return nil, err
		}
	}
	return fl, nil
}

// ParseClassBudgets parses the CLI class-budget syntax shared with
// qosd: ';'-separated "class=res:val,..." entries (res ∈ slices,
// brams, cfgbps, cfgburst).
func ParseClassBudgets(s string) (map[QoSClass]ClassBudget, error) {
	return admit.ParseClassBudgets(s)
}
