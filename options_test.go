package qosalloc_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"qosalloc"
)

// fig1Runtime builds the fig. 1 platform through the public facade.
func fig1Runtime(t *testing.T, cb *qosalloc.CaseBase) *qosalloc.Runtime {
	t.Helper()
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		t.Fatal(err)
	}
	fpga := qosalloc.NewFPGADevice("fpga0", []qosalloc.FPGASlot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
	dsp := qosalloc.NewProcessorDevice("dsp0", qosalloc.TargetDSP, 1000, 128*1024)
	gpp := qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 1000, 256*1024)
	return qosalloc.NewRuntime(repo, fpga, dsp, gpp)
}

// TestFacadeServiceV2 drives the v2 quickstart end to end: options,
// context-threaded calls, batch allocation, instrumentation.
func TestFacadeServiceV2(t *testing.T) {
	cb, err := qosalloc.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	reg := qosalloc.NewObsRegistry()
	svc := qosalloc.NewService(cb, fig1Runtime(t, cb),
		qosalloc.WithShards(2),
		qosalloc.WithMaxBatch(8),
		qosalloc.WithThreshold(0.5),
		qosalloc.WithPreemption(true),
		qosalloc.WithRegistry(reg),
	)
	defer svc.Close()

	ctx := context.Background()
	best, err := svc.Retrieve(ctx, qosalloc.PaperRequest())
	if err != nil || best.Impl != 2 {
		t.Fatalf("Retrieve = %+v, %v", best, err)
	}
	d, err := svc.Allocate(ctx, "mp3", qosalloc.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Target != qosalloc.TargetDSP || d.Device != "dsp0" {
		t.Errorf("decision = %+v", d)
	}
	out, err := svc.AllocateBatch(ctx, "batch", []qosalloc.Request{qosalloc.PaperRequest()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Err != nil || out[0].Decision == nil {
		t.Fatalf("batch = %+v", out)
	}
	if st := svc.Stats(); st.Allocated != 2 || st.Batches == 0 {
		t.Errorf("stats = %+v", st)
	}
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "qos_serve_batches_total") {
		t.Error("registry missing serve series after WithRegistry")
	}

	// Cancellation is first-class on every v2 call.
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := svc.Retrieve(dead, qosalloc.PaperRequest()); !errors.Is(err, qosalloc.ErrCanceled) {
		t.Errorf("canceled Retrieve = %v", err)
	}

	svc.Close()
	if _, err := svc.Retrieve(ctx, qosalloc.PaperRequest()); !errors.Is(err, qosalloc.ErrServiceClosed) {
		t.Errorf("closed Retrieve = %v", err)
	}
}

// TestFacadeServiceOverloadTyped checks the typed shed error crosses the
// facade intact.
func TestFacadeServiceOverloadTyped(t *testing.T) {
	var ov *qosalloc.ErrOverload
	err := error(&qosalloc.ErrOverload{Shard: 1, QueueLen: 3, RetryAfter: 40})
	if !errors.As(err, &ov) || ov.RetryAfter != 40 {
		t.Fatalf("ErrOverload round trip = %+v", ov)
	}
}

// TestFacadeV2Constructors covers the per-layer v2 entry points against
// their v1 shims.
func TestFacadeV2Constructors(t *testing.T) {
	cb, err := qosalloc.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	reg := qosalloc.NewObsRegistry()

	eng := qosalloc.NewRetrievalEngine(cb, qosalloc.WithThreshold(0.9), qosalloc.WithRegistry(reg))
	best, err := eng.Retrieve(qosalloc.PaperRequest())
	if err != nil || best.Impl != 2 {
		t.Fatalf("engine = %+v, %v", best, err)
	}
	if v, ok := reg.CounterValue("qos_retrieval_total"); !ok || v != 1 {
		t.Errorf("engine not instrumented: %d, %v", v, ok)
	}

	pool := qosalloc.NewRetrievalPool(cb, qosalloc.WithMaxIdle(2))
	if _, err := pool.RetrieveContext(context.Background(), qosalloc.PaperRequest()); err != nil {
		t.Fatal(err)
	}

	mgr := qosalloc.NewAllocationManager(cb, fig1Runtime(t, cb),
		qosalloc.WithNBest(2), qosalloc.WithBypassTokens(true), qosalloc.WithMaxTokens(8))
	d, err := mgr.Request("mp3", qosalloc.PaperRequest(), 5)
	if err != nil || d.Target != qosalloc.TargetDSP {
		t.Fatalf("manager = %+v, %v", d, err)
	}
}
