// Package qosalloc is a reproduction of "Hardware Support for QoS-based
// Function Allocation in Reconfigurable Systems" (Ullmann, Jin, Becker;
// DATE): case-based-reasoning retrieval of function-implementation
// variants under quality-of-service constraints, a cycle-accurate model
// of the paper's FPGA retrieval unit, a MicroBlaze-class software
// baseline, and the surrounding multi-device allocation system.
//
// # Architecture
//
// The public API mirrors the paper's layering (fig. 1):
//
//   - Case base & requests: NewRegistry/NewBuilder describe the
//     design-time implementation tree — function types, variants, QoS
//     attributes — and NewRequest builds QoS-constrained function
//     requests (package internal/attr, internal/casebase).
//   - Retrieval: NewEngine is the double-precision reference retrieval
//     (eq. 1 local similarity, eq. 2 weighted amalgamation, thresholds,
//     n-best); NewFixedEngine is the bit-exact 16-bit twin of the
//     hardware datapath (internal/retrieval, internal/similarity,
//     internal/fixed).
//   - Memory images: EncodeTree/EncodeRequest/EncodeSupplemental lay the
//     case base out as the paper's 16-bit linear lists (figs. 4–5), the
//     format both hardware and software retrieval consume
//     (internal/memlist).
//   - Hardware unit: HWRetrieve runs the cycle-accurate FSM + datapath
//     simulation (fig. 6–7) including the §5 block-compact fetch option
//     (internal/hwsim on internal/rtl); EstimateSynthesis reproduces the
//     Table 2 area/clock report (internal/synth).
//   - Software baseline: NewSWRunner executes the same retrieval as
//     MicroBlaze-class assembly on a cycle-cost CPU model
//     (internal/swret on internal/mb32).
//   - System: NewFPGADevice/NewProcessorDevice/NewRepository model the
//     platform, NewRuntime the task layer with adaptive priorities, and
//     NewManager the QoS allocation manager — feasibility checks,
//     preemption, alternative offers and bypass tokens
//     (internal/device, internal/rtsys, internal/alloc).
//   - Workloads & experiments: GenCaseBase/GenRequests synthesize
//     paper-scale inputs; Experiments exposes one driver per table and
//     figure of the paper (internal/workload, internal/experiments).
//
// # Quickstart
//
// Build a case base, ask for a function under QoS constraints, and read
// the ranked answers:
//
//	cb, _ := qosalloc.PaperCaseBase()
//	eng := qosalloc.NewEngine(cb, qosalloc.EngineOptions{})
//	best, _ := eng.Retrieve(qosalloc.PaperRequest())
//	fmt.Println(best.Name, best.Similarity) // fir-eq-dsp 0.96...
//
// See examples/ for runnable scenarios and cmd/repro for the full
// reproduction of every table and figure.
package qosalloc
