// Command cbrgen generates and inspects case bases.
//
// Usage:
//
//	cbrgen -types 15 -impls 10 -attrs 10            # summary to stdout
//	cbrgen -types 15 -impls 10 -attrs 10 -dump      # full tree listing
//	cbrgen -paper -dump                             # the paper's §3 example
//	cbrgen -types 15 -impls 10 -attrs 10 -image cb.bin  # BRAM image file
package main

import (
	"flag"
	"fmt"
	"os"

	"qosalloc"
)

func main() {
	types := flag.Int("types", 15, "number of function types")
	impls := flag.Int("impls", 10, "implementations per type")
	attrs := flag.Int("attrs", 10, "attributes per implementation")
	universe := flag.Int("universe", 10, "distinct attribute types")
	seed := flag.Int64("seed", 1, "generator seed")
	paper := flag.Bool("paper", false, "use the paper's §3 example instead of generating")
	dump := flag.Bool("dump", false, "print the full implementation tree")
	image := flag.String("image", "", "write the fig. 5 memory image to this file")
	jsonOut := flag.String("json", "", "write the case base as JSON to this file")
	flag.Parse()

	var cb *qosalloc.CaseBase
	var err error
	if *paper {
		cb, err = qosalloc.PaperCaseBase()
	} else {
		cb, _, err = qosalloc.GenCaseBase(qosalloc.CaseBaseSpec{
			Types: *types, ImplsPerType: *impls, AttrsPerImpl: *attrs,
			AttrUniverse: *universe, Seed: *seed,
		})
	}
	if err != nil {
		fatal(err)
	}

	s := cb.Stats()
	fmt.Printf("case base: %d types, %d implementations, %d attribute instances\n",
		s.Types, s.Impls, s.Attrs)
	tree, err := qosalloc.EncodeTree(cb)
	if err != nil {
		fatal(err)
	}
	supp := qosalloc.EncodeSupplemental(cb.Registry())
	fmt.Printf("memory image: tree %d bytes, supplemental %d bytes\n",
		tree.Size(), supp.Size())

	if *dump {
		for _, ft := range cb.Types() {
			fmt.Printf("\ntype %d %q\n", ft.ID, ft.Name)
			for i := range ft.Impls {
				im := &ft.Impls[i]
				fmt.Printf("  impl %d %q on %s\n", im.ID, im.Name, im.Target)
				for _, p := range im.Attrs {
					d, _ := cb.Registry().Lookup(p.ID)
					fmt.Printf("    attr %d (%s) = %s\n", p.ID, d.Name, d.SymbolFor(p.Value))
				}
			}
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := qosalloc.SaveCaseBase(f, cb); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote JSON case base to %s\n", *jsonOut)
	}

	if *image != "" {
		// Concatenate tree ++ supplemental, the CB-MEM layout the
		// hardware unit expects.
		data := append(tree.Bytes(), supp.Bytes()...)
		if err := os.WriteFile(*image, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d bytes to %s (tree at 0, supplemental at word %d)\n",
			len(data), *image, tree.Size()/2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cbrgen: %v\n", err)
	os.Exit(1)
}
