// Command mbrun assembles and executes programs for the MicroBlaze-class
// soft-core model — the standalone front end to the mb32 substrate.
//
// Usage:
//
//	mbrun prog.s                       # assemble and run
//	mbrun -list prog.s                 # print the labeled listing only
//	mbrun -mem 4096 -steps 100000 prog.s
//	mbrun -reg 20=0x100 -reg 21=256 prog.s   # preset registers
//	mbrun -retrieval                   # run the built-in QoS retrieval kernel listing
//
// After a run, the register file, cycle count and instruction-mix
// profile are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"qosalloc/internal/mb32"
	"qosalloc/internal/swret"
)

// regFlags collects repeated -reg n=value presets.
type regFlags map[int]int32

func (r regFlags) String() string { return fmt.Sprintf("%d presets", len(r)) }

func (r regFlags) Set(s string) error {
	idx, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want n=value, got %q", s)
	}
	n, err := strconv.Atoi(idx)
	if err != nil || n < 1 || n > 31 {
		return fmt.Errorf("bad register number %q", idx)
	}
	v, err := strconv.ParseInt(val, 0, 32)
	if err != nil {
		return fmt.Errorf("bad value %q", val)
	}
	r[n] = int32(v)
	return nil
}

func main() {
	mem := flag.Int("mem", 4096, "data memory size in bytes")
	steps := flag.Uint64("steps", 1_000_000, "instruction budget")
	list := flag.Bool("list", false, "print the labeled listing instead of running")
	retrieval := flag.Bool("retrieval", false, "use the built-in QoS retrieval kernel")
	barrel := flag.Bool("barrel", false, "cost model with barrel shifter")
	regs := regFlags{}
	flag.Var(&regs, "reg", "preset register n=value, repeatable")
	flag.Parse()

	var src string
	switch {
	case *retrieval:
		src = swret.Source
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(b)
	default:
		fatal(fmt.Errorf("exactly one source file required (or -retrieval)"))
	}

	prog, err := mb32.Assemble(src)
	if err != nil {
		fatal(err)
	}
	if *list {
		fmt.Print(mb32.Listing(prog))
		return
	}

	cpu := mb32.New(prog, *mem)
	if *barrel {
		cpu.Cost = mb32.MicroBlazeCosts()
	} else {
		cpu.Cost = mb32.MicroBlazeBaseCosts()
	}
	for n, v := range regs {
		cpu.Regs[n] = v
	}
	cycles, err := cpu.Run(*steps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("halted after %d cycles (%.2f us at 66 MHz)\n\n", cycles, float64(cycles)/66)
	fmt.Print(cpu.Profile())
	fmt.Println("\nnon-zero registers:")
	for i, v := range cpu.Regs {
		if v != 0 {
			fmt.Printf("  r%-2d = %11d  (0x%08x)\n", i, v, uint32(v))
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mbrun: %v\n", err)
	os.Exit(1)
}
