// Qosvet is the repo's invariant checker: a go vet tool bundling the
// internal/lint analyzer suite (detlint, q15lint, obslint, errlint).
//
// Build it once and hand it to go vet:
//
//	go build -o bin/qosvet ./cmd/qosvet
//	go vet -vettool=$(pwd)/bin/qosvet ./...
//
// or simply `make lint`. Individual analyzers can be selected with
// their flag names (`-detlint`), and intentional violations are
// suppressed in source with `//qosvet:ignore <analyzer> <reason>`.
// See the internal/lint package documentation and DESIGN.md §10 for
// the invariants each analyzer guards.
package main

import "qosalloc/internal/lint"

func main() {
	lint.Main(lint.All())
}
