// Qosvet is the repo's invariant checker: a go vet tool bundling the
// internal/lint analyzer suite (detlint, q15lint, obslint, errlint,
// locklint, leaklint).
//
// Build it once and hand it to go vet:
//
//	go build -o bin/qosvet ./cmd/qosvet
//	go vet -vettool=$(pwd)/bin/qosvet ./...
//
// or simply `make lint`. Individual analyzers can be selected with
// their flag names (`-detlint`), `-json` emits the machine-readable
// diagnostic stream documented in internal/lint/doc.go, and
// intentional violations are suppressed in source with
// `//qosvet:ignore <analyzer> <reason>` (full-suite runs audit the
// directives and report stale ones; `-audit=false` disables that).
// locklint and leaklint are interprocedural: acquired-lock summaries
// travel between packages as vetx facts, so the declared
// //qosvet:lockorder hierarchy is enforced across package boundaries.
// See the internal/lint package documentation and DESIGN.md §10 and
// §15 for the invariants each analyzer guards.
package main

import "qosalloc/internal/lint"

func main() {
	lint.Main(lint.All())
}
