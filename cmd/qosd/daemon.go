package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qosalloc"
	"qosalloc/internal/admit"
	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/fault"
	"qosalloc/internal/obs"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/serve"
	"qosalloc/internal/wire"
	"qosalloc/internal/workload"
)

// options is the daemon configuration assembled from flags. The
// case-base spec defaults here are the contract qosload mirrors: both
// sides generate the same synthetic case base from the same seed, so
// the harness knows which function types and attributes exist.
type options struct {
	addr string

	// Service shape.
	shards     int
	maxBatch   int
	maxQueue   int
	windowUS   uint64
	threshold  float64
	preemption bool
	// compact serves retrieval from the block-compacted layout (§5):
	// datapath-precision similarities from the Q15 kernel, identical
	// across shard counts.
	compact bool

	// Synthetic case base (shared contract with qosload).
	types        int
	implsPerType int
	attrsPerImpl int
	attrUniverse int
	cbSeed       int64

	// Admission.
	ratePerSec int64
	burst      int64

	// Breaker.
	brkWindow       int
	brkRatio        float64
	brkMinSamples   int
	brkBackoffUS    uint64
	brkMaxBackoffUS uint64

	// Scripted fault plan (at:kind:device[:slot];... in sim µs).
	faults string

	// Multi-tenant QoS classes: tenant→class bindings
	// ("alice=gold,bob=bronze") and class budgets
	// ("gold=slices:2000,brams:8;bronze=cfgbps:65536"). Empty means
	// every tenant is unmetered. Requests name their tenant in the
	// X-QoS-Tenant header.
	tenants string
	classes string

	// Live case-base mutation: POST /v1/observe|retain|retire commit
	// through the service's epoch snapshot pipeline. Off by default —
	// mutation requests then get a typed 403 learning_off.
	learn         bool
	learnAlpha    float64
	learnFold     int
	learnMaxAgeUS uint64

	// lockstep takes the admission clock from the X-QoS-Now request
	// header (sim µs) instead of the wall clock, making admission
	// decisions replayable bit-for-bit for a fixed request schedule.
	lockstep bool

	requestTimeout time.Duration
	drainTimeout   time.Duration
}

func defaultOptions() options {
	return options{
		addr:           "127.0.0.1:7333",
		shards:         4,
		maxBatch:       16,
		maxQueue:       64,
		types:          12,
		implsPerType:   6,
		attrsPerImpl:   5,
		attrUniverse:   8,
		cbSeed:         42,
		ratePerSec:     admit.DefaultRatePerSec,
		burst:          admit.DefaultBurst,
		brkWindow:      admit.DefaultWindow,
		brkRatio:       admit.DefaultTripRatio,
		brkMinSamples:  admit.DefaultMinSamples,
		learnAlpha:     serve.DefaultAlpha,
		learnFold:      serve.DefaultFoldThreshold,
		preemption:     true,
		requestTimeout: 2 * time.Second,
		drainTimeout:   10 * time.Second,
	}
}

// nowHeader is the lockstep admission-clock request header (sim µs).
const nowHeader = "X-QoS-Now"

// tenantHeader names the requesting tenant for QoS-class budget
// attribution; absent means unmetered.
const tenantHeader = "X-QoS-Tenant"

// daemon is the qosd server state: the allocation service behind an
// admission gate, a fault injector feeding the gate's breakers, and
// the drain fence the SIGTERM path uses.
type daemon struct {
	opt  options
	cb   *qosalloc.CaseBase
	svc  *qosalloc.Service
	rt   *qosalloc.Runtime
	gate *admit.Gate
	inj  *qosalloc.FaultInjector
	reg  *obs.Registry
	met  *daemonMetrics
	mux  *http.ServeMux

	start  time.Time     // wall epoch for the open-mode sim clock
	simNow atomic.Uint64 // high-water admission clock (sim µs)

	// drainMu fences request admission against the drain: handlers
	// hold RLock across the draining check and the inflight.Add, the
	// drain holds Lock to raise the flag — a request either lands
	// before the drain waits or is refused, never half-admitted.
	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	holdMu sync.Mutex
	holds  []hold // auto-release deadlines, kept sorted by at

	// ledger enforces tenant QoS-class budgets; grants remembers which
	// tenant and footprint each live task was charged under so Release
	// (explicit or hold-driven) can return the holdings.
	ledger  *admit.Ledger
	grantMu sync.Mutex
	grants  map[qosalloc.TaskID]grant

	// preServe, when set (tests only), runs after admission and before
	// the service call — a hook to wedge an in-flight request.
	preServe func()
}

// hold is one auto-release obligation from an allocate with hold_us.
type hold struct {
	at device.Micros
	id qosalloc.TaskID
}

// grant is one task's budget charge: which tenant holds which
// footprint, to be released when the task goes away.
type grant struct {
	tenant string
	foot   casebase.Footprint
}

// daemonMetrics is the qos_qosd_* bundle. The registry is always
// non-nil in the daemon; the bundle exists so handler code never
// mentions the registry.
type daemonMetrics struct {
	retrieve *obs.Counter
	allocate *obs.Counter
	release  *obs.Counter
	observe  *obs.Counter
	retain   *obs.Counter
	retire   *obs.Counter
	ok       *obs.Counter
	clientEr *obs.Counter
	serverEr *obs.Counter
	released *obs.Counter
	draining *obs.Gauge
}

func newDaemonMetrics(reg *obs.Registry) *daemonMetrics {
	return &daemonMetrics{
		retrieve: reg.Counter("qos_qosd_requests_total{endpoint=\"retrieve\"}", "requests to /v1/retrieve"),
		allocate: reg.Counter("qos_qosd_requests_total{endpoint=\"allocate\"}", "requests to /v1/allocate"),
		release:  reg.Counter("qos_qosd_requests_total{endpoint=\"release\"}", "requests to /v1/release"),
		observe:  reg.Counter("qos_qosd_requests_total{endpoint=\"observe\"}", "requests to /v1/observe"),
		retain:   reg.Counter("qos_qosd_requests_total{endpoint=\"retain\"}", "requests to /v1/retain"),
		retire:   reg.Counter("qos_qosd_requests_total{endpoint=\"retire\"}", "requests to /v1/retire"),
		ok:       reg.Counter("qos_qosd_responses_total{class=\"2xx\"}", "successful responses"),
		clientEr: reg.Counter("qos_qosd_responses_total{class=\"4xx\"}", "client-error responses (bad request, shed, no match)"),
		serverEr: reg.Counter("qos_qosd_responses_total{class=\"5xx\"}", "server-error responses (breaker, draining, deadline, internal)"),
		released: reg.Counter("qos_qosd_holds_released_total", "tasks auto-released after their hold_us elapsed"),
		draining: reg.Gauge("qos_qosd_draining", "1 once SIGTERM drain has begun"),
	}
}

// newDaemon builds the full serving stack from opt: synthetic case
// base, fig. 1-style platform, allocation service, admission gate, and
// the fault injector wired into the gate's breakers.
func newDaemon(opt options) (*daemon, error) {
	cb, _, err := qosalloc.GenCaseBase(qosalloc.CaseBaseSpec{
		Types: opt.types, ImplsPerType: opt.implsPerType,
		AttrsPerImpl: opt.attrsPerImpl, AttrUniverse: opt.attrUniverse,
		Seed: opt.cbSeed,
	})
	if err != nil {
		return nil, err
	}
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		return nil, err
	}
	rt := qosalloc.NewRuntime(repo,
		qosalloc.NewFPGADevice("fpga0", []qosalloc.FPGASlot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		qosalloc.NewProcessorDevice("dsp0", qosalloc.TargetDSP, 2000, 1<<20),
		qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 2000, 1<<21),
	)
	plan, err := qosalloc.ParseFaultPlan(opt.faults)
	if err != nil {
		return nil, err
	}
	ledger := admit.NewLedger()
	if opt.classes != "" {
		budgets, err := admit.ParseClassBudgets(opt.classes)
		if err != nil {
			return nil, err
		}
		for class, b := range budgets {
			ledger.DefineClass(class, b)
		}
	}
	if opt.tenants != "" {
		specs, err := workload.ParseTenantMix(opt.tenants)
		if err != nil {
			return nil, err
		}
		for _, t := range specs {
			ledger.BindTenant(t.ID, admit.QoSClass(t.Class))
		}
	}

	reg := obs.NewRegistry()
	d := &daemon{
		opt:    opt,
		cb:     cb,
		rt:     rt,
		reg:    reg,
		met:    newDaemonMetrics(reg),
		start:  time.Now(),
		ledger: ledger,
		grants: make(map[qosalloc.TaskID]grant),
	}
	svcOpts := []qosalloc.Option{
		qosalloc.WithShards(opt.shards),
		qosalloc.WithMaxBatch(opt.maxBatch),
		qosalloc.WithMaxQueue(opt.maxQueue),
		qosalloc.WithBatchWindow(qosalloc.Micros(opt.windowUS)),
		qosalloc.WithThreshold(opt.threshold),
		qosalloc.WithPreemption(opt.preemption),
		qosalloc.WithCompactLayout(opt.compact),
		qosalloc.WithRegistry(reg),
	}
	if opt.learn {
		svcOpts = append(svcOpts, qosalloc.WithLearning(
			opt.learnAlpha, opt.learnFold, qosalloc.Micros(opt.learnMaxAgeUS)))
	}
	d.svc = qosalloc.NewService(cb, rt, svcOpts...)
	d.gate = admit.NewGate(admit.GateConfig{
		Shards:  d.svc.Shards(),
		Limiter: admit.LimiterConfig{RatePerSec: opt.ratePerSec, Burst: opt.burst},
		Breaker: admit.BreakerConfig{
			Window: opt.brkWindow, TripRatio: opt.brkRatio,
			MinSamples: opt.brkMinSamples,
			Backoff:    device.Micros(opt.brkBackoffUS),
			MaxBackoff: device.Micros(opt.brkMaxBackoffUS),
		},
	}, reg)
	d.inj = qosalloc.NewFaultInjector(rt, plan)
	d.inj.Instrument(reg)
	rt.Instrument(reg)
	// Platform faults feed the breakers: a fault that stranded tasks
	// hits the shards those tasks' function types route to; a fault
	// with no victim still signals the device and lands on every shard
	// (the platform shrank for all of them).
	d.inj.Subscribe(func(a fault.Applied) {
		now := rt.Now()
		shards := make(map[int]bool)
		for _, id := range a.Affected {
			if t, ok := rt.Task(id); ok {
				shards[d.gate.Shard(t.Type)] = true
			}
		}
		if len(shards) == 0 {
			for i := 0; i < d.gate.Shards(); i++ {
				shards[i] = true
			}
		}
		// Deterministic feed order (detlint: no order-dependent writes
		// from map iteration).
		idxs := make([]int, 0, len(shards))
		for i := range shards {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			d.gate.RecordFault(i, now)
		}
	})

	d.mux = http.NewServeMux()
	d.mux.HandleFunc("POST /v1/retrieve", d.handleRetrieve)
	d.mux.HandleFunc("POST /v1/allocate", d.handleAllocate)
	d.mux.HandleFunc("POST /v1/release", d.handleRelease)
	d.mux.HandleFunc("POST /v1/observe", d.handleObserve)
	d.mux.HandleFunc("POST /v1/retain", d.handleRetain)
	d.mux.HandleFunc("POST /v1/retire", d.handleRetire)
	d.mux.HandleFunc("GET /metrics", d.handleMetrics)
	d.mux.HandleFunc("GET /statz", d.handleStatz)
	d.mux.HandleFunc("GET /healthz", d.handleHealthz)
	return d, nil
}

// now resolves the admission clock for one request: the X-QoS-Now
// header in lockstep mode (required), wall µs since daemon start
// otherwise. The returned time also advances the platform (applying
// due faults) when it moves the high-water mark forward.
func (d *daemon) now(r *http.Request) (device.Micros, error) {
	var now device.Micros
	if d.opt.lockstep {
		h := r.Header.Get(nowHeader)
		if h == "" {
			return 0, fmt.Errorf("lockstep mode requires the %s header", nowHeader)
		}
		v, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad %s header %q: %w", nowHeader, h, err)
		}
		now = device.Micros(v)
	} else {
		now = device.Micros(time.Since(d.start) / time.Microsecond)
	}
	d.advanceTo(now)
	return now, nil
}

// advanceTo moves the platform's sim clock to now (monotonically),
// applying due scripted faults and recovering stranded tasks under the
// service's exclusive section, then settles due auto-releases.
func (d *daemon) advanceTo(now device.Micros) {
	for {
		cur := d.simNow.Load()
		if uint64(now) <= cur {
			return
		}
		if d.simNow.CompareAndSwap(cur, uint64(now)) {
			break
		}
	}
	d.svc.Exclusive(func() {
		// Exclusive serializes; re-check against the system clock in
		// case a racing later advance already passed this target.
		if now <= d.rt.Now() {
			return
		}
		if _, err := d.inj.AdvanceTo(now); err != nil {
			return
		}
		d.svc.Manager().RecoverFromFaults()
	})
	d.releaseDue(now)
}

// releaseDue releases tasks whose hold window has elapsed.
func (d *daemon) releaseDue(now device.Micros) {
	d.holdMu.Lock()
	var due []qosalloc.TaskID
	i := 0
	for ; i < len(d.holds) && d.holds[i].at <= now; i++ {
		due = append(due, d.holds[i].id)
	}
	d.holds = d.holds[i:]
	d.holdMu.Unlock()
	for _, id := range due {
		// The task may already be gone (preempted, fault-rejected,
		// explicitly released); that is not an error for the hold path.
		// Either way the hold window is over, so the tenant's budget
		// charge is returned.
		if err := d.svc.Release(id); err == nil {
			d.met.released.Inc()
		}
		d.dropGrant(id)
	}
}

// addHold schedules an auto-release, keeping holds sorted by deadline.
func (d *daemon) addHold(at device.Micros, id qosalloc.TaskID) {
	d.holdMu.Lock()
	defer d.holdMu.Unlock()
	d.holds = append(d.holds, hold{at: at, id: id})
	sort.Slice(d.holds, func(i, j int) bool { return d.holds[i].at < d.holds[j].at })
}

// chargeTenant draws the placed variant's footprint from the tenant's
// QoS-class budget and remembers the grant for release. Anonymous or
// unbound tenants are unmetered (Ledger.Admit's contract).
func (d *daemon) chargeTenant(tenant string, ty casebase.TypeID, dec *qosalloc.Decision, now device.Micros) error {
	if tenant == "" {
		return nil
	}
	// Footprints come from the committed epoch's tree — with -learn the
	// construction-time d.cb goes stale after the first commit.
	ft, ok := d.svc.CaseBase().Type(ty)
	if !ok {
		return nil // validated earlier; belt and braces
	}
	im, ok := ft.Impl(dec.Impl)
	if !ok {
		return nil
	}
	if err := d.ledger.Admit(tenant, im.Foot, now); err != nil {
		return err
	}
	d.grantMu.Lock()
	d.grants[dec.Task.ID] = grant{tenant: tenant, foot: im.Foot}
	d.grantMu.Unlock()
	return nil
}

// dropGrant returns a released (or otherwise gone) task's holdings to
// its tenant's budget. Safe to call for tasks that were never charged.
func (d *daemon) dropGrant(id qosalloc.TaskID) {
	d.grantMu.Lock()
	g, ok := d.grants[id]
	if ok {
		delete(d.grants, id)
	}
	d.grantMu.Unlock()
	if ok {
		d.ledger.Release(g.tenant, g.foot)
	}
}

// begin admits one HTTP request past the drain fence; a false return
// means the 503 has already been written. Every true return must be
// paired with d.inflight.Done().
func (d *daemon) begin(w http.ResponseWriter) bool {
	d.drainMu.RLock()
	defer d.drainMu.RUnlock()
	if d.draining {
		writeError(w, http.StatusServiceUnavailable, wire.ErrorResponse{
			Code: wire.CodeDraining, Error: "qosd: draining for shutdown", RetryAfterUS: 1_000_000,
		})
		d.met.serverEr.Inc()
		return false
	}
	d.inflight.Add(1)
	return true
}

// --- Handlers ----------------------------------------------------------

func (d *daemon) handleRetrieve(w http.ResponseWriter, r *http.Request) {
	d.met.retrieve.Inc()
	if !d.begin(w) {
		return
	}
	defer d.inflight.Done()
	req, now, ok := d.decode(w, r)
	if !ok {
		return
	}
	shard := d.gate.Shard(casebase.TypeID(req.Type))
	if err := d.gate.Admit(req.Client, shard, now); err != nil {
		d.writeMapped(w, err)
		return
	}
	if d.preServe != nil {
		d.preServe()
	}
	ctx, cancel := context.WithTimeout(r.Context(), d.opt.requestTimeout)
	defer cancel()
	res, err := d.svc.Retrieve(ctx, req.Request())
	d.gate.Record(shard, now, breakerFailure(err))
	if err != nil {
		d.writeMapped(w, err)
		return
	}
	d.writeOK(w, wire.RetrieveResponse{
		Type: uint16(res.Type), Impl: uint16(res.Impl),
		Target: res.Target.String(), Name: res.Name, Similarity: res.Similarity,
	})
}

func (d *daemon) handleAllocate(w http.ResponseWriter, r *http.Request) {
	d.met.allocate.Inc()
	if !d.begin(w) {
		return
	}
	defer d.inflight.Done()
	req, now, ok := d.decode(w, r)
	if !ok {
		return
	}
	app := req.App
	if app == "" {
		app = req.Client
	}
	shard := d.gate.Shard(casebase.TypeID(req.Type))
	if err := d.gate.Admit(req.Client, shard, now); err != nil {
		d.writeMapped(w, err)
		return
	}
	if d.preServe != nil {
		d.preServe()
	}
	ctx, cancel := context.WithTimeout(r.Context(), d.opt.requestTimeout)
	defer cancel()
	dec, err := d.svc.Allocate(ctx, app, req.Request(), req.Priority)
	d.gate.Record(shard, now, breakerFailure(err))
	if err != nil {
		d.writeMapped(w, err)
		return
	}
	// Charge the tenant's QoS-class budget for the variant the service
	// actually placed. An over-budget charge rolls the placement back
	// atomically — the tenant sees a typed 429 and the platform is as
	// if the request never landed.
	if err := d.chargeTenant(r.Header.Get(tenantHeader), casebase.TypeID(req.Type), dec, now); err != nil {
		_ = d.svc.Release(dec.Task.ID)
		d.writeMapped(w, err)
		return
	}
	if req.HoldUS > 0 {
		d.addHold(dec.ReadyAt+device.Micros(req.HoldUS), dec.Task.ID)
	}
	d.writeOK(w, wire.AllocResponse{
		Task: int(dec.Task.ID), Type: uint16(req.Type), Impl: uint16(dec.Impl),
		Target: dec.Target.String(), Device: string(dec.Device),
		Similarity: dec.Similarity, ReadyAtUS: uint64(dec.ReadyAt),
		ViaToken: dec.ViaToken, Degraded: dec.Degraded != nil,
	})
}

func (d *daemon) handleRelease(w http.ResponseWriter, r *http.Request) {
	d.met.release.Inc()
	if !d.begin(w) {
		return
	}
	defer d.inflight.Done()
	var req wire.ReleaseRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, wire.MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorResponse{
			Code: wire.CodeBadRequest, Error: fmt.Sprintf("qosd: bad release body: %v", err),
		})
		d.met.clientEr.Inc()
		return
	}
	if err := d.svc.Release(qosalloc.TaskID(req.Task)); err != nil {
		writeError(w, http.StatusNotFound, wire.ErrorResponse{
			Code: wire.CodeUnknownTask, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return
	}
	d.dropGrant(qosalloc.TaskID(req.Task))
	d.writeOK(w, map[string]any{"released": req.Task})
}

// handleObserve folds one run-time QoS measurement into the service's
// deferred net-commit layer. The observation itself never blocks
// readers; when it trips the fold policy the commit happens inline and
// the response's epoch reflects it.
func (d *daemon) handleObserve(w http.ResponseWriter, r *http.Request) {
	d.met.observe.Inc()
	if !d.begin(w) {
		return
	}
	defer d.inflight.Done()
	req, err := wire.DecodeObserveRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorResponse{
			Code: wire.CodeBadRequest, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return
	}
	if _, err := d.now(r); err != nil { // advance the sim clock (age bound)
		writeError(w, http.StatusBadRequest, wire.ErrorResponse{
			Code: wire.CodeBadRequest, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return
	}
	if err := d.checkVariant(req.Type, req.Impl, req.Measured); err != nil {
		writeError(w, http.StatusNotFound, wire.ErrorResponse{
			Code: wire.CodeNoMatch, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return
	}
	if err := d.svc.Observe(req.Observation()); err != nil {
		d.writeMapped(w, err)
		return
	}
	st := d.svc.EpochStats()
	d.writeOK(w, wire.ObserveResponse{
		Epoch: st.Epoch, PendingRevs: st.PendingRevs, PendingObs: st.PendingObs,
	})
}

// handleRetain commits a new implementation variant through the epoch
// snapshot pipeline and registers its configuration blob.
func (d *daemon) handleRetain(w http.ResponseWriter, r *http.Request) {
	d.met.retain.Inc()
	if !d.begin(w) {
		return
	}
	defer d.inflight.Done()
	req, err := wire.DecodeRetainRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorResponse{
			Code: wire.CodeBadRequest, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return
	}
	if _, err := d.now(r); err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorResponse{
			Code: wire.CodeBadRequest, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return
	}
	if err := d.checkVariant(req.Type, 0, req.Attrs); err != nil {
		writeError(w, http.StatusNotFound, wire.ErrorResponse{
			Code: wire.CodeNoMatch, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return
	}
	id, err := d.svc.Retain(casebase.TypeID(req.Type), req.Implementation(), req.AtEpoch)
	if err != nil {
		d.writeMapped(w, err)
		return
	}
	d.writeOK(w, wire.RetainResponse{
		Type: req.Type, Impl: uint16(id), Epoch: d.svc.Epoch(),
	})
}

// handleRetire withdraws an implementation variant through the epoch
// snapshot pipeline.
func (d *daemon) handleRetire(w http.ResponseWriter, r *http.Request) {
	d.met.retire.Inc()
	if !d.begin(w) {
		return
	}
	defer d.inflight.Done()
	req, err := wire.DecodeRetireRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorResponse{
			Code: wire.CodeBadRequest, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return
	}
	if _, err := d.now(r); err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorResponse{
			Code: wire.CodeBadRequest, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return
	}
	if err := d.checkVariant(req.Type, req.Impl, nil); err != nil {
		writeError(w, http.StatusNotFound, wire.ErrorResponse{
			Code: wire.CodeNoMatch, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return
	}
	if err := d.svc.Retire(casebase.TypeID(req.Type), casebase.ImplID(req.Impl), req.AtEpoch); err != nil {
		d.writeMapped(w, err)
		return
	}
	d.writeOK(w, wire.RetireResponse{
		Type: req.Type, Impl: req.Impl, Epoch: d.svc.Epoch(),
	})
}

func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := d.reg.WriteProm(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// statz is the human/debug JSON snapshot: service counters, gate
// state, and the admission clock.
func (d *daemon) handleStatz(w http.ResponseWriter, r *http.Request) {
	st := d.svc.Stats()
	out := map[string]any{
		"serve":         st,
		"breaker_trips": d.gate.Trips(),
		"sim_now_us":    d.simNow.Load(),
		"draining":      d.svc.Draining(),
		"lockstep":      d.opt.lockstep,
	}
	if d.opt.learn {
		out["learn"] = d.svc.EpochStats()
		out["epoch_journal"] = d.svc.Journal()
		out["replay_hash"] = d.svc.ReplayHash()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (d *daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	d.drainMu.RLock()
	draining := d.draining
	d.drainMu.RUnlock()
	if draining {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// decode reads the request body and resolves the admission clock,
// writing the 400 itself on failure.
func (d *daemon) decode(w http.ResponseWriter, r *http.Request) (*wire.AllocRequest, device.Micros, bool) {
	req, err := wire.DecodeAllocRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorResponse{
			Code: wire.CodeBadRequest, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return nil, 0, false
	}
	// Semantic validation against the served case base (unknown type,
	// value outside an attribute's design bounds) is still the client's
	// fault — surface it as 400 here rather than as an internal error
	// out of the engine. The committed epoch's tree is the reference —
	// with -learn the construction-time d.cb goes stale after commits.
	if err := req.Request().Validate(d.svc.CaseBase()); err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorResponse{
			Code: wire.CodeBadRequest, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return nil, 0, false
	}
	now, err := d.now(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.ErrorResponse{
			Code: wire.CodeBadRequest, Error: err.Error(),
		})
		d.met.clientEr.Inc()
		return nil, 0, false
	}
	return req, now, true
}

// checkVariant validates a mutation request against the committed
// epoch's tree so the common client mistakes (unknown type, unknown
// impl, unknown attribute) get typed 4xx replies instead of surfacing
// as internal errors out of the commit pipeline. impl 0 skips the
// implementation check (retain assigns fresh IDs). A commit racing this
// check is caught again inside the pipeline.
func (d *daemon) checkVariant(ty, impl uint16, attrs []wire.MeasurementJSON) error {
	cb := d.svc.CaseBase()
	ft, ok := cb.Type(casebase.TypeID(ty))
	if !ok {
		return fmt.Errorf("unknown function type %d", ty)
	}
	if impl != 0 {
		if _, ok := ft.Impl(casebase.ImplID(impl)); !ok {
			return fmt.Errorf("unknown impl %d of type %d", impl, ty)
		}
	}
	for _, a := range attrs {
		if _, ok := cb.Registry().Lookup(attr.ID(a.ID)); !ok {
			return fmt.Errorf("unknown attribute %d", a.ID)
		}
	}
	return nil
}

// breakerFailure decides whether a service error is a health signal
// for the shard breaker. Semantic outcomes (no match, no feasible
// placement) and load shedding are not: they are the service answering
// correctly. Device failures and deadline blowouts are.
func breakerFailure(err error) bool {
	if err == nil {
		return false
	}
	var nm *retrieval.ErrNoMatch
	switch {
	case errors.As(err, &nm),
		errors.Is(err, serve.ErrClosed): // includes ErrDraining
		return false
	case errors.Is(err, qosalloc.ErrDeviceFailed),
		errors.Is(err, context.DeadlineExceeded):
		return true
	}
	var nf *qosalloc.ErrNoFeasible
	var ov *serve.ErrOverload
	if errors.As(err, &nf) || errors.As(err, &ov) {
		return false
	}
	if errors.Is(err, retrieval.ErrCanceled) {
		// Client went away; says nothing about shard health.
		return false
	}
	return true // unclassified: treat as a failure
}

// writeMapped translates a typed pipeline error into its HTTP shape.
func (d *daemon) writeMapped(w http.ResponseWriter, err error) {
	status, body := mapError(err)
	writeError(w, status, body)
	if status >= 500 {
		d.met.serverEr.Inc()
	} else {
		d.met.clientEr.Inc()
	}
}

// mapError is the single error → (status, body) table for the daemon.
func mapError(err error) (int, wire.ErrorResponse) {
	if errors.Is(err, serve.ErrLearningOff) {
		return http.StatusForbidden, wire.ErrorResponse{
			Code: wire.CodeLearningOff, Error: err.Error(),
		}
	}
	var se *serve.ErrStaleEpoch
	if errors.As(err, &se) {
		return http.StatusConflict, wire.ErrorResponse{
			Code: wire.CodeStaleEpoch, Error: err.Error(),
		}
	}
	var rl *admit.ErrRateLimited
	if errors.As(err, &rl) {
		return http.StatusTooManyRequests, wire.ErrorResponse{
			Code: wire.CodeRateLimited, Error: err.Error(), RetryAfterUS: uint64(rl.RetryAfter),
		}
	}
	var ov *serve.ErrOverload
	if errors.As(err, &ov) {
		return http.StatusTooManyRequests, wire.ErrorResponse{
			Code: wire.CodeOverload, Error: err.Error(), RetryAfterUS: uint64(ov.RetryAfter),
		}
	}
	var be *admit.ErrBudgetExceeded
	if errors.As(err, &be) {
		return http.StatusTooManyRequests, wire.ErrorResponse{
			Code: wire.CodeBudgetExceeded, Error: err.Error(), RetryAfterUS: uint64(be.RetryAfter),
		}
	}
	var bo *admit.ErrBreakerOpen
	if errors.As(err, &bo) {
		return http.StatusServiceUnavailable, wire.ErrorResponse{
			Code: wire.CodeBreakerOpen, Error: err.Error(), RetryAfterUS: uint64(bo.RetryAfter),
		}
	}
	if errors.Is(err, serve.ErrDraining) || errors.Is(err, serve.ErrClosed) {
		return http.StatusServiceUnavailable, wire.ErrorResponse{
			Code: wire.CodeDraining, Error: err.Error(), RetryAfterUS: 1_000_000,
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, wire.ErrorResponse{
			Code: wire.CodeDeadline, Error: err.Error(),
		}
	}
	if errors.Is(err, retrieval.ErrCanceled) {
		// Client cancellation surfaces as a timeout-class error too;
		// the client is gone, so the status is mostly for the logs.
		return http.StatusGatewayTimeout, wire.ErrorResponse{
			Code: wire.CodeDeadline, Error: err.Error(),
		}
	}
	var nm *retrieval.ErrNoMatch
	if errors.As(err, &nm) {
		return http.StatusNotFound, wire.ErrorResponse{
			Code: wire.CodeNoMatch, Error: err.Error(),
		}
	}
	var nf *qosalloc.ErrNoFeasible
	if errors.As(err, &nf) {
		return http.StatusConflict, wire.ErrorResponse{
			Code: wire.CodeNoFeasible, Error: err.Error(),
		}
	}
	return http.StatusInternalServerError, wire.ErrorResponse{
		Code: wire.CodeInternal, Error: err.Error(),
	}
}

// writeError emits the JSON error body plus the Retry-After header
// (whole seconds, rounded up) when the error class carries a hint.
func writeError(w http.ResponseWriter, status int, body wire.ErrorResponse) {
	if body.RetryAfterUS > 0 {
		secs := (body.RetryAfterUS + 999_999) / 1_000_000
		w.Header().Set("Retry-After", strconv.FormatUint(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (d *daemon) writeOK(w http.ResponseWriter, body any) {
	d.met.ok.Inc()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}

// --- Serving & drain ----------------------------------------------------

// run serves until the listener fails or a signal arrives, then drains:
// stop admitting (new requests get 503 + Retry-After), wait for
// in-flight handlers, flush the service's admitted backlog, shut the
// listener down, and write a final metrics snapshot to snap. A clean
// drain returns nil — the process exit code 0 the deployment contract
// expects.
func (d *daemon) run(ln net.Listener, sig <-chan os.Signal, snap io.Writer) error {
	srv := &http.Server{Handler: d.mux}
	errCh := make(chan error, 1)
	// The acceptor goroutine has no WaitGroup/context tie by design: it
	// lives exactly as long as the listener, and run's drain path below
	// closes the listener (srv.Close), which makes Serve return and the
	// buffered errCh send complete.
	//qosvet:ignore leaklint acceptor lifetime is bounded by the listener; srv.Close in the drain path unblocks Serve
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return fmt.Errorf("qosd: serve: %w", err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "qosd: %v: draining (timeout %v)\n", s, d.opt.drainTimeout)
	}

	d.drainMu.Lock()
	d.draining = true
	d.drainMu.Unlock()
	d.met.draining.Set(1)

	// In-flight handlers finish their service calls before the service
	// itself drains, so none of them are cut off mid-request.
	waited := make(chan struct{})
	go func() { d.inflight.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(d.opt.drainTimeout):
		fmt.Fprintln(os.Stderr, "qosd: drain timeout with handlers still in flight")
	}

	d.svc.Drain() // flush the admitted backlog, then stop the workers

	ctx, cancel := context.WithTimeout(context.Background(), d.opt.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("qosd: shutdown: %w", err)
	}

	if snap != nil {
		fmt.Fprintln(snap, "qosd: final metrics snapshot")
		if err := d.reg.WriteJSON(snap); err != nil {
			return fmt.Errorf("qosd: final snapshot: %w", err)
		}
	}
	return nil
}
