// Command qosd serves the QoS allocation pipeline over HTTP/JSON: the
// paper's retrieval + allocation stack behind an admission-control
// layer (per-client token buckets, per-shard circuit breakers fed by
// platform fault signals, typed overload shedding) with graceful drain
// on SIGTERM.
//
// Endpoints:
//
//	POST /v1/retrieve   {"client","type","constraints":[{"id","value","weight"}]}
//	POST /v1/allocate   retrieve body + {"app","priority","hold_us"}
//	POST /v1/release    {"client","task"}
//	POST /v1/observe    {"client","type","impl","measured":[{"id","value"}]}        (-learn)
//	POST /v1/retain     {"client","type","target","attrs",...,"footprint",...}      (-learn)
//	POST /v1/retire     {"client","type","impl","at_epoch"}                         (-learn)
//	GET  /metrics       Prometheus text exposition
//	GET  /statz         JSON state snapshot
//	GET  /healthz       "ok", or 503 "draining" during shutdown
//
// Errors are JSON {"code","error","retry_after_us"} with a stable code
// slug; 429/503 rejections carry a Retry-After header derived from the
// typed hint. With -lockstep the admission clock is taken from each
// request's X-QoS-Now header (sim µs) instead of the wall clock, so a
// fixed request schedule replays to identical outcomes — the mode the
// qosload harness uses for its determinism check.
//
// The daemon serves a synthetic case base generated from -cb-seed and
// the -types/-impls/-attrs/-universe spec; qosload generates requests
// against the same spec, which is the whole client/server contract.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	opt := defaultOptions()
	flag.StringVar(&opt.addr, "addr", opt.addr, "listen address")
	flag.IntVar(&opt.shards, "shards", opt.shards, "retrieval shards")
	flag.IntVar(&opt.maxBatch, "max-batch", opt.maxBatch, "max requests per micro-batch")
	flag.IntVar(&opt.maxQueue, "max-queue", opt.maxQueue, "per-shard admission queue bound")
	flag.Uint64Var(&opt.windowUS, "batch-window-us", opt.windowUS, "micro-batch linger budget (sim µs)")
	flag.Float64Var(&opt.threshold, "threshold", opt.threshold, "similarity acceptance threshold")
	flag.BoolVar(&opt.preemption, "preemption", opt.preemption, "allow priority preemption")
	flag.BoolVar(&opt.compact, "compact", opt.compact, "serve retrieval from the block-compacted layout (datapath-precision similarities)")
	flag.IntVar(&opt.types, "types", opt.types, "case-base function types")
	flag.IntVar(&opt.implsPerType, "impls", opt.implsPerType, "implementations per type")
	flag.IntVar(&opt.attrsPerImpl, "attrs", opt.attrsPerImpl, "attributes per implementation")
	flag.IntVar(&opt.attrUniverse, "universe", opt.attrUniverse, "distinct attribute types")
	flag.Int64Var(&opt.cbSeed, "cb-seed", opt.cbSeed, "case-base generator seed (shared with qosload)")
	flag.Int64Var(&opt.ratePerSec, "rate", opt.ratePerSec, "per-client token-bucket refill (req/s of sim time)")
	flag.Int64Var(&opt.burst, "burst", opt.burst, "per-client token-bucket capacity")
	flag.IntVar(&opt.brkWindow, "brk-window", opt.brkWindow, "breaker rolling outcome window")
	flag.Float64Var(&opt.brkRatio, "brk-ratio", opt.brkRatio, "breaker failure-ratio trip point")
	flag.IntVar(&opt.brkMinSamples, "brk-min", opt.brkMinSamples, "breaker min window samples before tripping")
	flag.Uint64Var(&opt.brkBackoffUS, "brk-backoff-us", opt.brkBackoffUS, "breaker first open interval (sim µs, 0 = default)")
	flag.Uint64Var(&opt.brkMaxBackoffUS, "brk-max-backoff-us", opt.brkMaxBackoffUS, "breaker backoff cap (sim µs, 0 = default)")
	flag.StringVar(&opt.faults, "faults", opt.faults, "scripted fault plan (at:kind:device[:slot];...)")
	flag.StringVar(&opt.tenants, "tenants", opt.tenants, "tenant QoS-class bindings (tenant=class,...; empty = unmetered)")
	flag.StringVar(&opt.classes, "classes", opt.classes, "QoS class budgets (class=slices:N,brams:N,cfgbps:N,cfgburst:N;...)")
	flag.BoolVar(&opt.learn, "learn", opt.learn, "enable live case-base mutation (/v1/observe|retain|retire)")
	flag.Float64Var(&opt.learnAlpha, "learn-alpha", opt.learnAlpha, "EWMA weight of new observations in (0,1]")
	flag.IntVar(&opt.learnFold, "learn-fold", opt.learnFold, "pending LSB-visible revisions that trip a commit")
	flag.Uint64Var(&opt.learnMaxAgeUS, "learn-max-age-us", opt.learnMaxAgeUS, "sim-µs age of pending observations that trips a commit (0 = off)")
	flag.BoolVar(&opt.lockstep, "lockstep", opt.lockstep, "take the admission clock from the X-QoS-Now header")
	flag.DurationVar(&opt.requestTimeout, "request-timeout", opt.requestTimeout, "per-request service deadline")
	flag.DurationVar(&opt.drainTimeout, "drain-timeout", opt.drainTimeout, "SIGTERM drain deadline")
	flag.Parse()

	d, err := newDaemon(opt)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("qosd: listening on http://%s (lockstep=%v, shards=%d)\n",
		ln.Addr(), opt.lockstep, opt.shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	if err := d.run(ln, sig, os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qosd: %v\n", err)
	os.Exit(1)
}
