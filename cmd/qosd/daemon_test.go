package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"qosalloc"
	"qosalloc/internal/wire"
)

// startDaemon boots a daemon on a loopback port and returns its base
// URL, the signal channel that triggers the drain, and the channel
// run's error lands on.
func startDaemon(t *testing.T, opt options) (*daemon, string, chan os.Signal, chan error) {
	t.Helper()
	d, err := newDaemon(opt)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- d.run(ln, sig, io.Discard) }()
	return d, "http://" + ln.Addr().String(), sig, done
}

// testRequests generates a request stream against the same case-base
// spec the daemon serves — the qosload client contract.
func testRequests(t *testing.T, opt options, n int) []wire.AllocRequest {
	t.Helper()
	cb, reg, err := qosalloc.GenCaseBase(qosalloc.CaseBaseSpec{
		Types: opt.types, ImplsPerType: opt.implsPerType,
		AttrsPerImpl: opt.attrsPerImpl, AttrUniverse: opt.attrUniverse,
		Seed: opt.cbSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := qosalloc.GenRequests(cb, reg, qosalloc.RequestStreamSpec{
		N: n, ConstraintsPer: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]wire.AllocRequest, n)
	for i, r := range reqs {
		out[i] = wire.AllocRequest{Client: "t", Type: uint16(r.Type)}
		for _, c := range r.Constraints {
			out[i].Constraints = append(out[i].Constraints, wire.ConstraintJSON{
				ID: uint16(c.ID), Value: uint16(c.Value), Weight: c.Weight,
			})
		}
	}
	return out
}

// post sends one wire request with the lockstep clock header and
// decodes the response body into out (when out is non-nil).
func post(t *testing.T, url string, body any, now uint64, out any) (*http.Response, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(nowHeader, fmt.Sprint(now))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, data)
		}
	}
	return resp, string(data)
}

func lockstepOptions() options {
	opt := defaultOptions()
	opt.lockstep = true
	opt.drainTimeout = 5 * time.Second
	return opt
}

func TestDaemonServesRetrieveAllocateRelease(t *testing.T) {
	opt := lockstepOptions()
	_, base, sig, done := startDaemon(t, opt)
	defer func() { sig <- syscall.SIGTERM; <-done }()
	reqs := testRequests(t, opt, 8)

	now := uint64(1000)
	var rr wire.RetrieveResponse
	resp, body := post(t, base+"/v1/retrieve", reqs[0], now, &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrieve: %d %s", resp.StatusCode, body)
	}
	if rr.Type != reqs[0].Type || rr.Similarity <= 0 || rr.Similarity > 1 {
		t.Fatalf("retrieve response %+v", rr)
	}

	alloc := reqs[1]
	alloc.App = "app0"
	alloc.Priority = 5
	var ar wire.AllocResponse
	resp, body = post(t, base+"/v1/allocate", alloc, now+1000, &ar)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("allocate: %d %s", resp.StatusCode, body)
	}
	if ar.Device == "" || ar.Target == "" {
		t.Fatalf("allocate response %+v", ar)
	}

	resp, body = post(t, base+"/v1/release", wire.ReleaseRequest{Client: "t", Task: ar.Task}, now+2000, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release: %d %s", resp.StatusCode, body)
	}
	// Releasing again is an unknown task now.
	resp, body = post(t, base+"/v1/release", wire.ReleaseRequest{Client: "t", Task: ar.Task}, now+3000, nil)
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, wire.CodeUnknownTask) {
		t.Fatalf("double release: %d %s", resp.StatusCode, body)
	}

	// Malformed body → 400 bad_request.
	resp, body = post(t, base+"/v1/retrieve", map[string]any{"bogus": 1}, now+4000, nil)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, wire.CodeBadRequest) {
		t.Fatalf("bad request: %d %s", resp.StatusCode, body)
	}

	// Lockstep mode without the clock header → 400.
	raw, _ := json.Marshal(reqs[2])
	plain, err := http.Post(base+"/v1/retrieve", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	plain.Body.Close()
	if plain.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing %s header: %d", nowHeader, plain.StatusCode)
	}

	for _, path := range []string{"/healthz", "/metrics", "/statz"} {
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s: %d", path, r.StatusCode)
		}
	}
}

func TestDaemonRateLimits(t *testing.T) {
	opt := lockstepOptions()
	opt.ratePerSec = 10 // one token per 100 ms of sim time
	opt.burst = 2
	_, base, sig, done := startDaemon(t, opt)
	defer func() { sig <- syscall.SIGTERM; <-done }()
	reqs := testRequests(t, opt, 4)

	// Burst of 2 admitted at t=0ish, third shed with Retry-After.
	for i := 0; i < 2; i++ {
		resp, body := post(t, base+"/v1/retrieve", reqs[i], uint64(i+1), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body := post(t, base+"/v1/retrieve", reqs[2], 3, nil)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(body, wire.CodeRateLimited) {
		t.Fatalf("want 429 rate_limited, got %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	// Honoring the refill interval admits again.
	resp, body = post(t, base+"/v1/retrieve", reqs[3], 200_000, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after refill: %d %s", resp.StatusCode, body)
	}
}

func TestDaemonFaultTripsAndRecoversBreaker(t *testing.T) {
	opt := lockstepOptions()
	opt.faults = "1000:devfail:fpga0"
	opt.brkMinSamples = 1
	opt.brkRatio = 0.5
	opt.brkBackoffUS = 50_000
	_, base, sig, done := startDaemon(t, opt)
	defer func() { sig <- syscall.SIGTERM; <-done }()
	reqs := testRequests(t, opt, 2)

	// Advancing past the scripted devfail feeds every breaker (the
	// fault had no victims, so the whole platform shrank); with
	// MinSamples 1 they all trip, so the request itself is rejected.
	resp, body := post(t, base+"/v1/retrieve", reqs[0], 2000, nil)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, wire.CodeBreakerOpen) {
		t.Fatalf("want 503 breaker_open after fault storm, got %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker rejection without a Retry-After header")
	}

	// After the backoff the breaker half-opens: the probe goes through
	// (retrieval doesn't need fpga0), succeeds, and re-closes it.
	resp, body = post(t, base+"/v1/retrieve", reqs[0], 2000+60_000, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open probe: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, base+"/v1/retrieve", reqs[1], 2000+60_001, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after recovery: %d %s", resp.StatusCode, body)
	}

	// The trips are visible on /statz.
	r, err := http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var statz struct {
		BreakerTrips int64 `json:"breaker_trips"`
	}
	if err := json.NewDecoder(r.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if statz.BreakerTrips == 0 {
		t.Fatal("statz reports zero breaker trips after a fault storm")
	}
}

// TestDaemonSIGTERMDrain pins the shutdown acceptance contract:
// in-flight requests complete, new requests get 503 with Retry-After,
// and run returns nil (exit 0) within the drain deadline.
func TestDaemonSIGTERMDrain(t *testing.T) {
	opt := lockstepOptions()
	d, err := newDaemon(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the first in-flight request after admission, before the
	// service call, so it is provably mid-flight when SIGTERM lands.
	// (The drain-time request below never reaches the hook — it is
	// refused at the fence — so the one channel receive is enough.)
	gate := make(chan struct{})
	entered := make(chan struct{})
	d.preServe = func() { close(entered); <-gate }

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- d.run(ln, sig, io.Discard) }()
	base := "http://" + ln.Addr().String()
	reqs := testRequests(t, opt, 2)

	inflight := make(chan int, 1)
	go func() {
		resp, _ := post(t, base+"/v1/retrieve", reqs[0], 1000, nil)
		inflight <- resp.StatusCode
	}()
	<-entered // the request is now provably past admission and in flight

	sig <- syscall.SIGTERM
	waitForCond(t, "drain to begin", func() bool {
		d.drainMu.RLock()
		defer d.drainMu.RUnlock()
		return d.draining
	})

	// New requests are refused with 503 + Retry-After while the wedged
	// one is still in flight.
	resp, body := post(t, base+"/v1/retrieve", reqs[1], 2000, nil)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, wire.CodeDraining) {
		t.Fatalf("during drain: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain rejection without a Retry-After header")
	}
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d", hr.StatusCode)
	}

	// Release the wedge: the in-flight request must complete normally.
	close(gate)
	if got := <-inflight; got != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", got)
	}

	// And the daemon exits cleanly within the drain deadline.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil (exit 0)", err)
		}
	case <-time.After(opt.drainTimeout + 5*time.Second):
		t.Fatal("daemon did not exit within the drain deadline")
	}
	if !d.svc.Draining() {
		t.Fatal("service not marked draining after shutdown")
	}
}

func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// postAs is post with a tenant identity attached.
func postAs(t *testing.T, url, tenant string, body any, now uint64, out any) (*http.Response, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(nowHeader, fmt.Sprint(now))
	req.Header.Set(tenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, data)
		}
	}
	return resp, string(data)
}

func TestDaemonTenantBudgets(t *testing.T) {
	opt := lockstepOptions()
	// "tiny" cannot afford any bitstream (burst 1 byte, every synthetic
	// footprint streams ≥ 1 KiB); "big" is effectively unmetered but
	// still attributed.
	opt.tenants = "alice=tiny,dave=big"
	opt.classes = "tiny=cfgbps:1,cfgburst:1;big=slices:100000,brams:100000"
	d, base, sig, done := startDaemon(t, opt)
	defer func() { sig <- syscall.SIGTERM; <-done }()
	reqs := testRequests(t, opt, 4)

	alloc := reqs[0]
	alloc.App = "a0"
	alloc.Priority = 5

	// Over-budget tenant: typed 429, and the placement is rolled back.
	resp, body := postAs(t, base+"/v1/allocate", "alice", alloc, 1000, nil)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(body, wire.CodeBudgetExceeded) {
		t.Fatalf("over-budget allocate: %d %s", resp.StatusCode, body)
	}

	// Anonymous requests are unmetered — and succeed, proving the
	// rejected placement above did not leak platform capacity.
	var ar wire.AllocResponse
	resp, body = post(t, base+"/v1/allocate", alloc, 2000, &ar)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous allocate: %d %s", resp.StatusCode, body)
	}

	// A solvent tenant is charged, and release returns the grant.
	alloc2 := reqs[1]
	alloc2.App = "a1"
	alloc2.Priority = 5
	var ar2 wire.AllocResponse
	resp, body = postAs(t, base+"/v1/allocate", "dave", alloc2, 3000, &ar2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metered allocate: %d %s", resp.StatusCode, body)
	}
	d.grantMu.Lock()
	held := len(d.grants)
	d.grantMu.Unlock()
	if held != 1 {
		t.Fatalf("grants after metered allocate: %d, want 1", held)
	}
	resp, body = post(t, base+"/v1/release", wire.ReleaseRequest{Client: "t", Task: ar2.Task}, 4000, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release: %d %s", resp.StatusCode, body)
	}
	d.grantMu.Lock()
	held = len(d.grants)
	d.grantMu.Unlock()
	if held != 0 {
		t.Fatalf("grants after release: %d, want 0", held)
	}
}
