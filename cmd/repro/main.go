// Command repro regenerates every quantitative table and figure of the
// paper. Run it with no flags for the full report, with -list to see the
// experiment index, or with -exp <id> for a single experiment.
//
// Usage:
//
//	repro               # run everything
//	repro -list         # list experiments with their paper claims
//	repro -exp table1   # reproduce one table/figure
package main

import (
	"flag"
	"fmt"
	"os"

	"qosalloc"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "run a single experiment by ID (default: all)")
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %-55s %s\n", "ID", "TITLE", "PAPER RESULT")
		for _, e := range qosalloc.Experiments() {
			fmt.Printf("%-12s %-55s %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	if *exp != "" {
		e, ok := qosalloc.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s ===\n    paper: %s\n\n", e.ID, e.Title, e.Paper)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := qosalloc.RunAllExperiments(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
}
