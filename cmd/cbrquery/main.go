// Command cbrquery runs one QoS retrieval against a case base from the
// command line, on any of the four engines.
//
// Usage:
//
//	cbrquery -type 1 -c 1=16 -c 3=1 -c 4=40                  # paper case base, float engine
//	cbrquery -type 1 -c bitwidth=16 -c output-mode=stereo -c sample-rate=40  # by name/symbol
//	cbrquery -type 1 -c 1=16 -c 3=1 -c 4=40 -engine hw       # cycle-accurate hardware
//	cbrquery -type 1 -c 1=16 -c 3=1 -c 4=40 -engine sw       # MicroBlaze software model
//	cbrquery -type 1 -c 1=16 -c 3=1 -c 4=40 -n 3 -threshold 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"qosalloc"
)

// constraintFlags collects repeated -c flags as raw strings; attribute
// names and symbolic values resolve against the loaded case base's
// registry, so both `-c 4=40` and `-c sample-rate=40` (and even
// `-c output-mode=stereo`) work.
type constraintFlags []string

func (c *constraintFlags) String() string { return fmt.Sprintf("%d constraints", len(*c)) }

func (c *constraintFlags) Set(s string) error {
	if !strings.Contains(s, "=") {
		return fmt.Errorf("want attr=value[:weight], got %q", s)
	}
	*c = append(*c, s)
	return nil
}

// resolve turns the raw -c strings into constraints using the registry.
func (c constraintFlags) resolve(reg *qosalloc.Registry) ([]qosalloc.Constraint, error) {
	var out []qosalloc.Constraint
	for _, raw := range c {
		key, rest, _ := strings.Cut(raw, "=")
		val, weightStr, hasW := strings.Cut(rest, ":")

		var def qosalloc.AttrDef
		if id, err := strconv.ParseUint(key, 10, 16); err == nil {
			d, ok := reg.Lookup(qosalloc.AttrID(id))
			if !ok {
				return nil, fmt.Errorf("unknown attribute ID %s", key)
			}
			def = d
		} else if d, ok := reg.ByName(key); ok {
			def = d
		} else {
			return nil, fmt.Errorf("unknown attribute %q", key)
		}

		v, err := def.ParseValue(val)
		if err != nil {
			return nil, err
		}
		w := 0.0
		if hasW {
			w, err = strconv.ParseFloat(weightStr, 64)
			if err != nil {
				return nil, fmt.Errorf("bad weight in %q", raw)
			}
		}
		out = append(out, qosalloc.Constraint{ID: def.ID, Value: v, Weight: w})
	}
	return out, nil
}

func main() {
	var cons constraintFlags
	typeID := flag.Uint("type", 1, "requested function type ID")
	engine := flag.String("engine", "float", "engine: float, fixed, hw, sw")
	n := flag.Int("n", 1, "return the n most similar variants (float engine)")
	threshold := flag.Float64("threshold", 0, "reject results below this similarity")
	local := flag.String("local", "linear", "local measure: linear, quadratic, exact, at-least")
	amal := flag.String("amalgamation", "weighted-sum", "weighted-sum, minimum, maximum, weighted-euclid")
	vcd := flag.String("vcd", "", "with -engine hw: dump an FSM waveform (VCD) to this file")
	load := flag.String("load", "", "load the case base from a JSON file (see cbrgen -json)")
	gen := flag.Bool("gen", false, "query a generated paper-scale case base instead of the §3 example")
	seed := flag.Int64("seed", 1, "generator seed with -gen")
	flag.Var(&cons, "c", "constraint id=value[:weight], repeatable")
	flag.Parse()

	var cb *qosalloc.CaseBase
	var err error
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			fatal(ferr)
		}
		cb, err = qosalloc.LoadCaseBase(f)
		f.Close()
	} else if *gen {
		cb, _, err = qosalloc.GenCaseBase(func() qosalloc.CaseBaseSpec {
			s := qosalloc.PaperScaleSpec()
			s.Seed = *seed
			return s
		}())
	} else {
		cb, err = qosalloc.PaperCaseBase()
	}
	if err != nil {
		fatal(err)
	}
	if len(cons) == 0 {
		fatal(fmt.Errorf("at least one -c constraint required"))
	}
	resolved, err := cons.resolve(cb.Registry())
	if err != nil {
		fatal(err)
	}
	req := qosalloc.NewRequest(qosalloc.TypeID(*typeID), resolved...)
	weighted := false
	for _, c := range req.Constraints {
		if c.Weight > 0 {
			weighted = true
		}
	}
	if weighted {
		req = req.NormalizeWeights()
	} else {
		req = req.EqualWeights()
	}

	switch *engine {
	case "float":
		lm, err := qosalloc.LocalMeasureByName(*local)
		if err != nil {
			fatal(err)
		}
		am, err := qosalloc.AmalgamationByName(*amal)
		if err != nil {
			fatal(err)
		}
		e := qosalloc.NewEngine(cb, qosalloc.EngineOptions{
			Local: lm, Amalgamation: am, Threshold: *threshold, KeepLocals: true,
		})
		rs, err := e.RetrieveN(req, *n)
		if err != nil {
			fatal(err)
		}
		for i, r := range rs {
			fmt.Printf("#%d impl %d (%s, %s): S = %.4f\n", i+1, r.Impl, r.Name, r.Target, r.Similarity)
			for _, l := range r.Locals {
				fmt.Printf("     attr %d: req=%d impl=%d found=%v s=%.4f w=%.3f\n",
					l.ID, l.Req, l.Impl, l.Found, l.Sim, l.Weight)
			}
		}
	case "fixed":
		fe := qosalloc.NewFixedEngine(cb)
		rs, err := fe.RetrieveN(req, *n)
		if err != nil {
			fatal(err)
		}
		for i, r := range rs {
			fmt.Printf("#%d impl %d: S = %.4f (Q15 %d)\n", i+1, r.Impl, r.Float(), r.Similarity)
		}
	case "hw":
		cfg := qosalloc.HWConfig{}
		if *vcd != "" {
			cfg.Trace = qosalloc.NewHWTrace()
		}
		res, err := qosalloc.HWRetrieve(cb, req, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("impl %d: S = %.4f (Q15 %d), %d cycles (%.2f us at 75 MHz)\n",
			res.ImplID, res.Sim.Float(), res.Sim, res.Cycles, float64(res.Cycles)/75)
		if *vcd != "" {
			f, err := os.Create(*vcd)
			if err != nil {
				fatal(err)
			}
			if err := qosalloc.WriteVCD(f, cfg.Trace, "retrieval_unit"); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote waveform to %s\n", *vcd)
		}
	case "sw":
		res, err := qosalloc.NewSWRunner().Retrieve(cb, req)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("impl %d: S = %.4f (Q15 %d), %d cycles / %d instructions (%.2f us at 66 MHz)\n",
			res.ImplID, res.Sim.Float(), res.Sim, res.Cycles, res.Instructions,
			float64(res.Cycles)/66)
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cbrquery: %v\n", err)
	os.Exit(1)
}
