// Command sysim runs the end-to-end multi-device allocation simulation:
// the fig. 1 application mix (MP3 player, video, automotive ECU, cruise
// control) negotiating QoS function calls against a platform of two
// FPGAs, a DSP and a GP processor.
//
// Usage:
//
//	sysim                 # the fig. 1 scenario timeline
//	sysim -stream 500     # additionally replay a 500-request synthetic stream
package main

import (
	"flag"
	"fmt"
	"os"

	"qosalloc"
)

func main() {
	stream := flag.Int("stream", 0, "also replay N generated requests through the manager")
	seed := flag.Int64("seed", 42, "stream generator seed")
	repeat := flag.Float64("repeat", 0.5, "stream repeat fraction (bypass-token hits)")
	flag.Parse()

	e, ok := qosalloc.ExperimentByID("system")
	if !ok {
		fatal(fmt.Errorf("system experiment missing"))
	}
	fmt.Println("=== fig. 1 application-mix scenario ===")
	if err := e.Run(os.Stdout); err != nil {
		fatal(err)
	}

	if *stream > 0 {
		fmt.Printf("\n=== synthetic stream: %d requests, repeat %.2f ===\n", *stream, *repeat)
		if err := replayStream(*stream, *seed, *repeat); err != nil {
			fatal(err)
		}
	}
}

// replayStream pushes a generated request stream through a fresh
// platform and reports manager statistics.
func replayStream(n int, seed int64, repeat float64) error {
	cb, reg, err := qosalloc.GenCaseBase(qosalloc.PaperScaleSpec())
	if err != nil {
		return err
	}
	reqs, err := qosalloc.GenRequests(cb, reg, qosalloc.RequestStreamSpec{
		N: n, ConstraintsPer: 4, RepeatFraction: repeat, Seed: seed,
	})
	if err != nil {
		return err
	}
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		return err
	}
	rt := qosalloc.NewRuntime(repo,
		qosalloc.NewFPGADevice("fpga0", []qosalloc.FPGASlot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		qosalloc.NewProcessorDevice("dsp0", qosalloc.TargetDSP, 2000, 1<<20),
		qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 2000, 1<<21),
	)
	m := qosalloc.NewManager(cb, rt, qosalloc.ManagerOptions{
		NBest: 3, AllowPreemption: true, UseBypassTokens: true,
	})

	var ok, fail int
	var live []qosalloc.TaskID
	for i, req := range reqs {
		// Advance 1 ms per request; hold each allocation for 10
		// requests' worth of time by releasing the oldest.
		if err := rt.Advance(1000); err != nil {
			return err
		}
		if len(live) >= 10 {
			_ = m.Release(live[0])
			live = live[1:]
			m.ReplacePending()
		}
		d, err := m.Request(fmt.Sprintf("app%d", i%8), req, 1+i%9)
		if err != nil {
			fail++
			continue
		}
		ok++
		live = append(live, d.Task.ID)
	}
	st := m.Stats()
	fmt.Printf("requests:    %d\n", st.Requests)
	fmt.Printf("placed:      %d (failed %d)\n", ok, fail)
	fmt.Printf("retrievals:  %d (saved by bypass tokens: %d)\n", st.Retrievals, st.TokenHits)
	fmt.Printf("preemptions: %d\n", st.Preemptions)
	fmt.Printf("final power: %d mW across %d devices\n", rt.PowerMW(), len(rt.Devices()))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sysim: %v\n", err)
	os.Exit(1)
}
