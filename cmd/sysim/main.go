// Command sysim runs the end-to-end multi-device allocation simulation:
// the fig. 1 application mix (MP3 player, video, automotive ECU, cruise
// control) negotiating QoS function calls against a platform of two
// FPGAs, a DSP and a GP processor.
//
// Usage:
//
//	sysim                 # the fig. 1 scenario timeline
//	sysim -stream 500     # additionally replay a 500-request synthetic stream
//	sysim -stream 500 -faults "120000:slotfail:fpga0:1;200000:configerr:fpga0"
//	                      # …while injecting a scripted fault plan
//	sysim -serve -clients 32 -shards 8 -stream 400
//	                      # drive the concurrent allocation service instead:
//	                      # N client goroutines against the sharded batching
//	                      # front end, then a deterministic batched-allocation
//	                      # pass (DESIGN.md §9)
//
// The fault plan DSL is ';'-separated "at:kind:device[:slot]" events
// with kinds slotfail, devfail, configerr and seu; times are simulation
// microseconds. Every task stranded by a fault is either re-placed on an
// alternative variant (degrade-and-retry down the N-best list) or
// rejected with a structured DegradationReport — never silently dropped.
//
// Observability (DESIGN.md §7):
//
//	sysim -stream 500 -metrics prom   # Prometheus text exposition after the run
//	sysim -stream 500 -metrics json   # JSON snapshot (includes trace-ring events)
//	sysim -stream 500 -metrics both
//	sysim -pprof localhost:6060       # serve net/http/pprof while running
//
// -metrics instruments the stream's manager, runtime and injector on one
// shared registry and dumps it after the replay. All metric timestamps
// are simulation microseconds, so the dump is deterministic for a fixed
// seed and plan.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"qosalloc"
)

func main() {
	stream := flag.Int("stream", 0, "also replay N generated requests through the manager")
	seed := flag.Int64("seed", 42, "stream generator seed")
	repeat := flag.Float64("repeat", 0.5, "stream repeat fraction (bypass-token hits)")
	faults := flag.String("faults", "", "fault plan to inject during the stream (at:kind:device[:slot];...)")
	metrics := flag.String("metrics", "", "dump stream metrics after the run: prom, json or both")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	serveMode := flag.Bool("serve", false, "drive the concurrent allocation service instead of the scenario")
	clients := flag.Int("clients", 16, "client goroutines in -serve mode")
	shards := flag.Int("shards", 4, "retrieval shards in -serve mode")
	flag.Parse()

	switch *metrics {
	case "", "prom", "json", "both":
	default:
		fatal(fmt.Errorf("-metrics must be prom, json or both (got %q)", *metrics))
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "sysim: pprof: %v\n", err)
			}
		}()
		fmt.Printf("pprof: serving on http://%s/debug/pprof/\n", *pprofAddr)
	}

	plan, err := qosalloc.ParseFaultPlan(*faults)
	if err != nil {
		fatal(err)
	}

	if *serveMode {
		n := *stream
		if n <= 0 {
			n = 200
		}
		var reg *qosalloc.ObsRegistry
		if *metrics != "" {
			reg = qosalloc.NewObsRegistry()
		}
		if err := runService(n, *clients, *shards, *seed, *repeat, reg); err != nil {
			fatal(err)
		}
		dumpMetrics(*metrics, reg)
		return
	}

	e, ok := qosalloc.ExperimentByID("system")
	if !ok {
		fatal(fmt.Errorf("system experiment missing"))
	}
	fmt.Println("=== fig. 1 application-mix scenario ===")
	if err := e.Run(os.Stdout); err != nil {
		fatal(err)
	}

	if *stream > 0 || len(plan.Events) > 0 || *metrics != "" {
		n := *stream
		if n <= 0 {
			n = 200
		}
		var reg *qosalloc.ObsRegistry
		if *metrics != "" {
			reg = qosalloc.NewObsRegistry()
		}
		fmt.Printf("\n=== synthetic stream: %d requests, repeat %.2f", n, *repeat)
		if len(plan.Events) > 0 {
			fmt.Printf(", %d scripted faults", len(plan.Events))
		}
		fmt.Println(" ===")
		if err := replayStream(n, *seed, *repeat, plan, reg); err != nil {
			fatal(err)
		}
		dumpMetrics(*metrics, reg)
	}
}

func dumpMetrics(mode string, reg *qosalloc.ObsRegistry) {
	// Not a hot-path instrumentation guard: with -metrics off no registry
	// exists and no metrics section should be printed at all.
	//qosvet:ignore obslint CLI decides whether to render a metrics section, not whether to record
	if reg == nil {
		return
	}
	if mode == "prom" || mode == "both" {
		fmt.Println("\n=== metrics (prometheus text exposition) ===")
		if err := reg.WriteProm(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if mode == "json" || mode == "both" {
		fmt.Println("\n=== metrics (json snapshot) ===")
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// runService drives the DESIGN.md §9 service layer: a concurrent phase
// (client goroutines against the sharded, batching front end) and a
// deterministic batched-allocation phase. The retrieval results and the
// placement counts are deterministic for a fixed seed; only the batch
// shapes of the concurrent phase depend on scheduling.
func runService(n, clients, shards int, seed int64, repeat float64, oreg *qosalloc.ObsRegistry) error {
	if clients < 1 {
		clients = 1
	}
	cb, reg, err := qosalloc.GenCaseBase(qosalloc.PaperScaleSpec())
	if err != nil {
		return err
	}
	reqs, err := qosalloc.GenRequests(cb, reg, qosalloc.RequestStreamSpec{
		N: n, ConstraintsPer: 4, RepeatFraction: repeat, Seed: seed,
	})
	if err != nil {
		return err
	}
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		return err
	}
	rt := qosalloc.NewRuntime(repo,
		qosalloc.NewFPGADevice("fpga0", []qosalloc.FPGASlot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		qosalloc.NewProcessorDevice("dsp0", qosalloc.TargetDSP, 2000, 1<<20),
		qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 2000, 1<<21),
	)
	svc := qosalloc.NewService(cb, rt,
		qosalloc.WithShards(shards),
		qosalloc.WithPreemption(true),
		qosalloc.WithRegistry(oreg),
	)
	defer svc.Close()

	fmt.Printf("=== service mode: %d clients, %d shards, %d requests ===\n", clients, shards, n)

	// Phase 1: concurrent clients hammer the queued retrieval path;
	// shed requests are retried after the hinted backoff.
	ctx := context.Background()
	var ok, failed, shedRetries atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(reqs); i += clients {
				for {
					_, err := svc.Retrieve(ctx, reqs[i])
					var ov *qosalloc.ErrOverload
					if errors.As(err, &ov) {
						shedRetries.Add(1)
						time.Sleep(time.Duration(ov.RetryAfter) * time.Microsecond)
						continue
					}
					if err != nil {
						failed.Add(1)
					} else {
						ok.Add(1)
					}
					break
				}
			}
		}(c)
	}
	wg.Wait()
	st := svc.Stats()
	fmt.Printf("retrieved:   %d ok, %d failed (%d shed then retried)\n",
		ok.Load(), failed.Load(), shedRetries.Load())
	fmt.Printf("batching:    %d micro-batches, largest %d, dedup %d, token hits %d, engine walks %d\n",
		st.Batches, st.MaxBatch, st.DedupHits, st.TokenHits, st.EngineRetrievals)

	// Phase 2: the same stream as pre-formed allocation batches —
	// deterministic placement for a fixed seed.
	var placed, noFeasible int
	for lo := 0; lo < len(reqs); lo += 16 {
		hi := min(lo+16, len(reqs))
		out, err := svc.AllocateBatch(ctx, fmt.Sprintf("app%d", lo/16), reqs[lo:hi], 5)
		if err != nil {
			return err
		}
		for _, r := range out {
			if r.Err != nil {
				noFeasible++
				continue
			}
			placed++
			if err := svc.Release(r.Decision.Task.ID); err != nil {
				return err
			}
		}
		if err := svc.Advance(rt.Now() + 1000); err != nil {
			return err
		}
	}
	fmt.Printf("placed:      %d of %d batched allocations (%d without a feasible variant)\n",
		placed, n, noFeasible)
	fmt.Printf("final power: %d mW across %d devices\n", rt.PowerMW(), len(rt.Devices()))
	return nil
}

// replayStream pushes a generated request stream through a fresh
// platform — under the given fault plan — and reports manager and
// fault-recovery statistics. A non-nil reg instruments every layer.
func replayStream(n int, seed int64, repeat float64, plan qosalloc.FaultPlan, oreg *qosalloc.ObsRegistry) error {
	cb, reg, err := qosalloc.GenCaseBase(qosalloc.PaperScaleSpec())
	if err != nil {
		return err
	}
	reqs, err := qosalloc.GenRequests(cb, reg, qosalloc.RequestStreamSpec{
		N: n, ConstraintsPer: 4, RepeatFraction: repeat, Seed: seed,
	})
	if err != nil {
		return err
	}
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		return err
	}
	rt := qosalloc.NewRuntime(repo,
		qosalloc.NewFPGADevice("fpga0", []qosalloc.FPGASlot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		qosalloc.NewProcessorDevice("dsp0", qosalloc.TargetDSP, 2000, 1<<20),
		qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 2000, 1<<21),
	)
	m := qosalloc.NewManager(cb, rt, qosalloc.ManagerOptions{
		NBest: 3, AllowPreemption: true, UseBypassTokens: true,
	})
	inj := qosalloc.NewFaultInjector(rt, plan)
	// A nil registry yields dangling bundles, so instrumentation never
	// branches (obslint's dangling-bundle invariant).
	m.Instrument(oreg)
	rt.Instrument(oreg)
	inj.Instrument(oreg)

	var ok, fail, stranded, recovered, degraded, rejected int
	var live []qosalloc.TaskID
	absorb := func(recs []qosalloc.Recovery) {
		for _, rec := range recs {
			switch {
			case rec.Decision != nil:
				recovered++
				if rec.Decision.Degraded != nil {
					degraded++
					fmt.Printf("  [fault] task %d degraded: impl %d (S=%.2f) -> impl %d (S=%.2f), lost attrs %v\n",
						rec.Task, rec.Decision.Degraded.FromImpl, rec.Decision.Degraded.FromSim,
						rec.Decision.Degraded.ToImpl, rec.Decision.Degraded.ToSim,
						rec.Decision.Degraded.LostAttrs)
				}
			case rec.Report != nil:
				rejected++
				fmt.Printf("  [fault] task %d rejected: %v\n", rec.Task, rec.Report)
			}
		}
	}
	for i, req := range reqs {
		// Advance 1 ms per request, stopping at each scripted fault;
		// hold each allocation for 10 requests' worth of time by
		// releasing the oldest.
		applied, err := inj.AdvanceTo(rt.Now() + 1000)
		if err != nil {
			return err
		}
		for _, a := range applied {
			fmt.Printf("  [fault] t=%d %v hit %d task(s)\n", a.Event.At, a.Event, len(a.Affected))
			stranded += len(a.Affected)
		}
		if len(applied) > 0 {
			absorb(m.RecoverFromFaults())
		}
		if len(live) >= 10 {
			_ = m.Release(live[0])
			live = live[1:]
			m.ReplacePending()
		}
		d, err := m.Request(fmt.Sprintf("app%d", i%8), req, 1+i%9)
		if err != nil {
			fail++
			continue
		}
		ok++
		live = append(live, d.Task.ID)
	}
	// Fire any remaining faults and sweep once more.
	if _, err := inj.AdvanceTo(rt.Now() + 100_000); err != nil {
		return err
	}
	absorb(m.RecoverFromFaults())

	st := m.Stats()
	fmt.Printf("requests:    %d\n", st.Requests)
	fmt.Printf("placed:      %d (failed %d)\n", ok, fail)
	fmt.Printf("retrievals:  %d (saved by bypass tokens: %d)\n", st.Retrievals, st.TokenHits)
	fmt.Printf("preemptions: %d\n", st.Preemptions)
	if len(plan.Events) > 0 {
		mt := rt.Metrics()
		dropped := 0
		for _, t := range rt.Tasks() {
			if t.State == qosalloc.TaskFailed || (t.State == qosalloc.TaskPending && t.Faults > 0) {
				dropped++
			}
		}
		fmt.Printf("faults:      %d applied; %d stranded, %d re-placed (%d degraded), %d rejected, %d dropped\n",
			len(plan.Events), mt.Stranded, recovered, degraded, rejected, dropped)
		fmt.Printf("fault path:  %d config errors, %d SEUs, %d retries fired, %d requeued\n",
			mt.ConfigErrors, mt.SEUs, mt.Retries, mt.Requeued)
		if dropped > 0 {
			return fmt.Errorf("sysim: %d task(s) dropped without a DegradationReport", dropped)
		}
	}
	fmt.Printf("final power: %d mW across %d devices\n", rt.PowerMW(), len(rt.Devices()))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sysim: %v\n", err)
	os.Exit(1)
}
