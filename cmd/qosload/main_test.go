package main

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"qosalloc/internal/wire"
)

func testOptions(scenario string) options {
	return options{
		scenario: scenario, mode: "lockstep", seed: 7,
		requests: 300, clients: 8, rate: 2000, allocPct: 25, holdUS: 50_000,
		types: 12, implsPerType: 6, attrsPerImpl: 5, attrUniverse: 8, cbSeed: 42,
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	a, err := buildSchedule(testOptions("zipf"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSchedule(testOptions("zipf"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	for i := 1; i < len(a); i++ {
		if a[i].at < a[i-1].at {
			t.Fatalf("arrival grid not monotone at %d: %d < %d", i, a[i].at, a[i-1].at)
		}
	}
	if want := uint64(299) * 1_000_000 / 2000; a[len(a)-1].at != want {
		t.Fatalf("last arrival %dµs, want %dµs", a[len(a)-1].at, want)
	}
}

func TestZipfScheduleSkewsHot(t *testing.T) {
	shots, err := buildSchedule(testOptions("zipf"))
	if err != nil {
		t.Fatal(err)
	}
	byClient := map[string]int{}
	for _, s := range shots {
		byClient[s.client]++
	}
	hot := byClient["client-0"]
	if hot < len(shots)/3 {
		t.Fatalf("zipf hot client got %d/%d requests, want a clear majority share", hot, len(shots))
	}
	uni, err := buildSchedule(testOptions("uniform"))
	if err != nil {
		t.Fatal(err)
	}
	byClient = map[string]int{}
	for _, s := range uni {
		byClient[s.client]++
	}
	if byClient["client-0"] >= hot {
		t.Fatalf("uniform hot share %d not below zipf hot share %d", byClient["client-0"], hot)
	}
}

func TestScheduleSplitsAllocateAndRetrieve(t *testing.T) {
	shots, err := buildSchedule(testOptions("uniform"))
	if err != nil {
		t.Fatal(err)
	}
	var allocs int
	for _, s := range shots {
		if s.req.App != "" {
			if s.req.HoldUS == 0 || s.req.Priority < 1 {
				t.Fatalf("allocate shot missing hold/priority: %+v", s.req)
			}
			allocs++
		}
	}
	if allocs == 0 || allocs == len(shots) {
		t.Fatalf("alloc split degenerate: %d of %d", allocs, len(shots))
	}
}

func TestQuantilesOrdering(t *testing.T) {
	q := quantiles([]int64{9, 1, 5, 3, 7, 2, 8, 4, 6, 10})
	if q.P50 > q.P95 || q.P95 > q.P99 || q.P99 > q.Max || q.Max != 10 {
		t.Fatalf("quantiles disordered: %+v", q)
	}
	if z := quantiles(nil); z != (wire.BenchQuantiles{}) {
		t.Fatalf("empty quantiles not zero: %+v", z)
	}
}

func TestValidateAndCompareReportFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, hash string) string {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rep := &wire.BenchReport{
			Version: wire.BenchVersion, Scenario: "zipf", Mode: "lockstep",
			Seed: 1, Requests: 10, Clients: 2, RatePerSec: 100,
			OK: 10, OutcomeHash: hash,
		}
		if err := wire.EncodeBenchReport(f, rep); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := write("a.json", "fnv64a:0000000000000001")
	b := write("b.json", "fnv64a:0000000000000001")
	c := write("c.json", "fnv64a:0000000000000002")

	if err := validateReport(a); err != nil {
		t.Fatalf("validateReport(good): %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateReport(bad); !errors.Is(err, wire.ErrBadReport) {
		t.Fatalf("validateReport(bad) = %v, want ErrBadReport", err)
	}
	if err := compareReports(a + "," + b); err != nil {
		t.Fatalf("compareReports(equal): %v", err)
	}
	if err := compareReports(a + "," + c); err == nil {
		t.Fatal("compareReports(differing) accepted")
	}
	if err := compareReports(a); err == nil {
		t.Fatal("compareReports(one path) accepted")
	}
}
