// Command qosload is the deterministic open-loop load harness for
// qosd. It pre-computes a request schedule from a seed — arrival
// times on a fixed rate grid, a Zipf-hotkey or uniform client mix, a
// deterministic retrieve/allocate split — fires it at a live daemon,
// and emits a machine-readable BENCH_qosd_<scenario>.json report
// (p50/p95/p99 latency, shed rate, breaker trips, throughput).
//
// Modes:
//
//	-mode open       wall-clock pacing: request i goes out at start +
//	                 i/rate seconds, concurrently. Latency is real.
//	-mode lockstep   sequential replay: request i carries X-QoS-Now =
//	                 its scheduled sim time, so the daemon's admission
//	                 decisions are a pure function of the schedule.
//	                 Two runs of the same seed against fresh daemons
//	                 yield identical outcome hashes.
//
// The case-base spec flags must match the daemon's (same seed ⇒ same
// synthetic case base); the defaults on both sides agree.
//
// With -churn N, a seeded fraction (N%) of schedule slots gain an
// interleaved case-base mutation — observe/retain/retire in an
// 80/10/10 mix against a daemon running -learn. The churn schedule is
// drawn from its own generator (seed+1), so adding -churn never
// perturbs the base retrieve/allocate schedule; in lockstep mode the
// combined schedule still replays to an identical outcome hash.
//
// Maintenance:
//
//	qosload -validate BENCH_qosd_zipf.json     # schema-check a report
//	qosload -compare a.json,b.json             # compare outcome hashes
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"qosalloc"
	"qosalloc/internal/wire"
)

type options struct {
	addr     string
	scenario string // zipf | uniform
	mode     string // open | lockstep
	seed     int64
	requests int
	clients  int
	rate     int // requests per second of schedule time
	allocPct int // percent of requests that allocate (with hold_us)
	holdUS   uint64
	tenants  string // tenant mix "tenant=class[:weight],..."; empty = anonymous
	churnPct int    // percent of slots that gain an interleaved mutation
	out      string

	// Case-base spec (must mirror the daemon's flags).
	types        int
	implsPerType int
	attrsPerImpl int
	attrUniverse int
	cbSeed       int64
}

func main() {
	var validate, compare string
	opt := options{
		addr: "http://127.0.0.1:7333", scenario: "zipf", mode: "lockstep",
		seed: 1, requests: 400, clients: 8, rate: 2000,
		allocPct: 25, holdUS: 50_000,
		types: 12, implsPerType: 6, attrsPerImpl: 5, attrUniverse: 8, cbSeed: 42,
	}
	flag.StringVar(&opt.addr, "addr", opt.addr, "qosd base URL")
	flag.StringVar(&opt.scenario, "scenario", opt.scenario, "client mix: zipf or uniform")
	flag.StringVar(&opt.mode, "mode", opt.mode, "pacing: open (wall clock) or lockstep (X-QoS-Now)")
	flag.Int64Var(&opt.seed, "seed", opt.seed, "schedule seed")
	flag.IntVar(&opt.requests, "requests", opt.requests, "requests in the schedule")
	flag.IntVar(&opt.clients, "clients", opt.clients, "distinct client identities")
	flag.IntVar(&opt.rate, "rate", opt.rate, "scheduled arrival rate (req/s)")
	flag.IntVar(&opt.allocPct, "alloc-pct", opt.allocPct, "percent of requests that allocate (rest retrieve)")
	flag.Uint64Var(&opt.holdUS, "hold-us", opt.holdUS, "hold_us on allocate requests")
	flag.StringVar(&opt.tenants, "tenants", opt.tenants, "tenant mix tenant=class[:weight],... (empty = anonymous; classes must match qosd -tenants/-classes)")
	flag.IntVar(&opt.churnPct, "churn", opt.churnPct, "percent of schedule slots that gain an interleaved case-base mutation (observe/retain/retire; needs qosd -learn)")
	flag.StringVar(&opt.out, "out", "", "report path (default BENCH_qosd_<scenario>.json)")
	flag.IntVar(&opt.types, "types", opt.types, "case-base function types (must match qosd)")
	flag.IntVar(&opt.implsPerType, "impls", opt.implsPerType, "implementations per type (must match qosd)")
	flag.IntVar(&opt.attrsPerImpl, "attrs", opt.attrsPerImpl, "attributes per implementation (must match qosd)")
	flag.IntVar(&opt.attrUniverse, "universe", opt.attrUniverse, "distinct attribute types (must match qosd)")
	flag.Int64Var(&opt.cbSeed, "cb-seed", opt.cbSeed, "case-base seed (must match qosd)")
	flag.StringVar(&validate, "validate", "", "validate a report file against the schema and exit")
	flag.StringVar(&compare, "compare", "", "compare the outcome hashes of two report files: a.json,b.json")
	flag.Parse()

	if validate != "" {
		if err := validateReport(validate); err != nil {
			fatal(err)
		}
		fmt.Printf("qosload: %s: valid\n", validate)
		return
	}
	if compare != "" {
		if err := compareReports(compare); err != nil {
			fatal(err)
		}
		return
	}
	if opt.scenario != "zipf" && opt.scenario != "uniform" {
		fatal(fmt.Errorf("-scenario must be zipf or uniform (got %q)", opt.scenario))
	}
	if opt.mode != "open" && opt.mode != "lockstep" {
		fatal(fmt.Errorf("-mode must be open or lockstep (got %q)", opt.mode))
	}
	if opt.out == "" {
		opt.out = fmt.Sprintf("BENCH_qosd_%s.json", opt.scenario)
	}

	report, err := run(opt)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(opt.out)
	if err != nil {
		fatal(err)
	}
	if err := wire.EncodeBenchReport(f, report); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("qosload: %s: %d requests, %d ok, shed rate %.3f, p99 %dµs, hash %s\n",
		opt.out, report.Requests, report.OK, report.ShedRate,
		report.LatencyUS.P99, report.OutcomeHash)
}

// shot is one scheduled request: who fires what, when. Exactly one of
// the mutation pointers is set for a churn shot; all nil means the
// retrieve/allocate request in req.
type shot struct {
	at     uint64 // µs offset on the schedule grid
	client string
	tenant string // X-QoS-Tenant identity; empty = anonymous
	req    wire.AllocRequest

	observe *wire.ObserveRequest
	retain  *wire.RetainRequest
	retire  *wire.RetireRequest
}

// outcome is one settled request, hashed in schedule order.
type outcome struct {
	status    int
	code      string // ErrorResponse.Code, "ok" on 200
	latencyUS int64
}

// buildSchedule derives the whole run from the seed: arrival times on
// the fixed i/rate grid, the client mix, the request pool draw, and
// the retrieve/allocate split. Everything downstream is a pure
// function of this slice (latency aside).
func buildSchedule(opt options) ([]shot, error) {
	cb, reg, err := qosalloc.GenCaseBase(qosalloc.CaseBaseSpec{
		Types: opt.types, ImplsPerType: opt.implsPerType,
		AttrsPerImpl: opt.attrsPerImpl, AttrUniverse: opt.attrUniverse,
		Seed: opt.cbSeed,
	})
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(opt.seed))
	pool, err := qosalloc.GenRequests(cb, reg, qosalloc.RequestStreamSpec{
		N: opt.requests, ConstraintsPer: 3, RepeatFraction: 0.3, Rand: r,
	})
	if err != nil {
		return nil, err
	}
	// The tenant dimension draws from its own generator seeded by the
	// schedule seed, so adding -tenants never perturbs the client mix or
	// the retrieve/allocate split of an existing schedule.
	var tenanted []qosalloc.TenantedRequest
	if opt.tenants != "" {
		mix, err := qosalloc.ParseTenantMix(opt.tenants)
		if err != nil {
			return nil, err
		}
		tenanted, err = qosalloc.AssignTenants(pool, qosalloc.TenantMixSpec{Tenants: mix, Seed: opt.seed})
		if err != nil {
			return nil, err
		}
	}
	var zipf *rand.Zipf
	if opt.scenario == "zipf" && opt.clients > 1 {
		// s=1.2 hotkey skew: client 0 dominates, the tail thins out.
		zipf = rand.NewZipf(r, 1.2, 1, uint64(opt.clients-1))
	}
	shots := make([]shot, opt.requests)
	for i := range shots {
		var c uint64
		if zipf != nil {
			c = zipf.Uint64()
		} else {
			c = uint64(r.Intn(opt.clients))
		}
		creq := pool[i]
		w := wire.AllocRequest{Client: fmt.Sprintf("client-%d", c), Type: uint16(creq.Type)}
		for _, cs := range creq.Constraints {
			w.Constraints = append(w.Constraints, wire.ConstraintJSON{
				ID: uint16(cs.ID), Value: uint16(cs.Value), Weight: cs.Weight,
			})
		}
		if r.Intn(100) < opt.allocPct {
			w.App = w.Client
			w.Priority = 1 + r.Intn(9)
			w.HoldUS = opt.holdUS
		}
		shots[i] = shot{
			at:     uint64(i) * 1_000_000 / uint64(opt.rate),
			client: w.Client,
			req:    w,
		}
		if tenanted != nil {
			shots[i].tenant = tenanted[i].Tenant
		}
	}
	if opt.churnPct > 0 {
		shots = interleaveChurn(opt, cb, shots)
	}
	return shots, nil
}

// interleaveChurn weaves case-base mutations into the schedule: after
// each base slot, with -churn percent probability, one mutation fires
// at the same grid time. The churn dimension draws from its own
// generator (seed+1) — like the tenant mix, adding -churn never
// perturbs the arrival grid, client mix or retrieve/allocate split of
// an existing schedule. In lockstep mode the mutation sequence — and
// therefore the daemon's epoch journal — is a pure function of the
// seed.
func interleaveChurn(opt options, cb *qosalloc.CaseBase, base []shot) []shot {
	cr := rand.New(rand.NewSource(opt.seed + 1))
	types := cb.Types()
	merged := make([]shot, 0, len(base)+len(base)*opt.churnPct/100+1)
	for i, s := range base {
		merged = append(merged, s)
		if cr.Intn(100) >= opt.churnPct {
			continue
		}
		ft := types[cr.Intn(len(types))]
		client := fmt.Sprintf("churn-%d", cr.Intn(4))
		m := shot{at: s.at, client: client}
		switch k := cr.Intn(10); {
		case k < 8: // observe: nudge a deployed variant's attributes ±1
			im := ft.Impls[cr.Intn(len(ft.Impls))]
			var ms []wire.MeasurementJSON
			for _, p := range im.Attrs {
				v := int(p.Value) + cr.Intn(3) - 1
				if v < 0 {
					v = 0
				}
				ms = append(ms, wire.MeasurementJSON{ID: uint16(p.ID), Value: uint16(v)})
			}
			m.observe = &wire.ObserveRequest{
				Client: client, Type: uint16(ft.ID), Impl: uint16(im.ID), Measured: ms,
			}
		case k < 9: // retain: a fresh variant cloned from a seeded one
			im := ft.Impls[cr.Intn(len(ft.Impls))]
			rr := &wire.RetainRequest{
				Client: client, Type: uint16(ft.ID),
				Name: fmt.Sprintf("churn-%d", i), Target: im.Target.String(),
				Foot: wire.FootprintJSON{
					Slices: im.Foot.Slices, BRAMs: im.Foot.BRAMs,
					Multipliers: im.Foot.Multipliers, CPULoad: im.Foot.CPULoad,
					MemBytes: im.Foot.MemBytes, PowerMW: im.Foot.PowerMW,
					ConfigBytes: im.Foot.ConfigBytes,
				},
			}
			for _, p := range im.Attrs {
				rr.Attrs = append(rr.Attrs, wire.MeasurementJSON{ID: uint16(p.ID), Value: uint16(p.Value)})
			}
			m.retain = rr
		default: // retire a seeded variant (never the first; repeats 404)
			hi := len(ft.Impls) - 1
			if hi < 1 {
				hi = 1
			}
			m.retire = &wire.RetireRequest{
				Client: client, Type: uint16(ft.ID), Impl: uint16(2 + cr.Intn(hi)),
			}
		}
		merged = append(merged, m)
	}
	return merged
}

func run(opt options) (*wire.BenchReport, error) {
	shots, err := buildSchedule(opt)
	if err != nil {
		return nil, err
	}
	if err := waitHealthy(opt.addr); err != nil {
		return nil, err
	}
	tripsBefore, err := breakerTrips(opt.addr)
	if err != nil {
		return nil, err
	}

	results := make([]outcome, len(shots))
	start := time.Now()
	if opt.mode == "lockstep" {
		for i, s := range shots {
			results[i] = fire(opt, s, true)
		}
	} else {
		var wg sync.WaitGroup
		for i, s := range shots {
			if d := time.Duration(s.at)*time.Microsecond - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(i int, s shot) {
				defer wg.Done()
				results[i] = fire(opt, s, false)
			}(i, s)
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	tripsAfter, err := breakerTrips(opt.addr)
	if err != nil {
		return nil, err
	}

	rep := &wire.BenchReport{
		Version: wire.BenchVersion, Scenario: opt.scenario, Mode: opt.mode,
		Seed: opt.seed, Requests: len(shots), Clients: opt.clients,
		RatePerSec: opt.rate, BreakerTrip: int(tripsAfter - tripsBefore),
	}
	h := fnv.New64a()
	var lats []int64
	for i, o := range results {
		fmt.Fprintf(h, "%d:%d:%s\n", i, o.status, o.code)
		switch {
		case o.status == http.StatusOK:
			rep.OK++
			lats = append(lats, o.latencyUS)
		case o.status == http.StatusTooManyRequests:
			rep.Shed++
		case o.status == http.StatusServiceUnavailable:
			rep.Rejected++
		default:
			rep.Failed++
		}
	}
	rep.OutcomeHash = fmt.Sprintf("fnv64a:%016x", h.Sum64())
	rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ThroughputRPS = float64(rep.OK) / secs
	}
	rep.LatencyUS = quantiles(lats)

	if opt.tenants != "" {
		// Per-tenant outcome tally (sorted, deterministic): how the
		// daemon's class budgets treated each tenant in this run.
		type tstat struct{ ok, budget, other int }
		byTenant := make(map[string]*tstat)
		for i, o := range results {
			ts := byTenant[shots[i].tenant]
			if ts == nil {
				ts = &tstat{}
				byTenant[shots[i].tenant] = ts
			}
			switch {
			case o.status == http.StatusOK:
				ts.ok++
			case o.code == wire.CodeBudgetExceeded:
				ts.budget++
			default:
				ts.other++
			}
		}
		names := make([]string, 0, len(byTenant))
		for n := range byTenant {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ts := byTenant[n]
			fmt.Printf("qosload: tenant %s: %d ok, %d budget-rejected, %d other\n",
				n, ts.ok, ts.budget, ts.other)
		}
	}
	return rep, nil
}

// fire sends one scheduled request and classifies the outcome.
func fire(opt options, s shot, lockstep bool) outcome {
	var (
		payload any    = s.req
		path    string = "/v1/retrieve"
	)
	switch {
	case s.observe != nil:
		payload, path = s.observe, "/v1/observe"
	case s.retain != nil:
		payload, path = s.retain, "/v1/retain"
	case s.retire != nil:
		payload, path = s.retire, "/v1/retire"
	case s.req.App != "":
		path = "/v1/allocate"
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return outcome{status: -1, code: "marshal_error"}
	}
	hreq, err := http.NewRequest(http.MethodPost, opt.addr+path, bytes.NewReader(body))
	if err != nil {
		return outcome{status: -1, code: "request_error"}
	}
	hreq.Header.Set("Content-Type", "application/json")
	if lockstep {
		hreq.Header.Set("X-QoS-Now", fmt.Sprint(s.at))
	}
	if s.tenant != "" {
		hreq.Header.Set("X-QoS-Tenant", s.tenant)
	}
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(hreq)
	lat := time.Since(t0).Microseconds()
	if err != nil {
		return outcome{status: -1, code: "transport_error", latencyUS: lat}
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	code := "ok"
	if resp.StatusCode != http.StatusOK {
		var er wire.ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Code != "" {
			code = er.Code
		} else {
			code = "unparsed_error"
		}
	}
	return outcome{status: resp.StatusCode, code: code, latencyUS: lat}
}

// waitHealthy polls /healthz until the daemon answers (boot race).
func waitHealthy(addr string) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("healthz status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("qosd at %s not healthy: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// breakerTrips reads the cumulative trip count from /statz.
func breakerTrips(addr string) (int64, error) {
	resp, err := http.Get(addr + "/statz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var statz struct {
		BreakerTrips int64 `json:"breaker_trips"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		return 0, fmt.Errorf("statz: %w", err)
	}
	return statz.BreakerTrips, nil
}

// quantiles summarizes latencies (already OK-only) in microseconds.
func quantiles(lats []int64) wire.BenchQuantiles {
	if len(lats) == 0 {
		return wire.BenchQuantiles{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return wire.BenchQuantiles{
		P50: at(0.50), P95: at(0.95), P99: at(0.99), Max: lats[len(lats)-1],
	}
}

func validateReport(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = wire.DecodeBenchReport(f)
	return err
}

func compareReports(pair string) error {
	parts := strings.Split(pair, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare wants two paths: a.json,b.json (got %q)", pair)
	}
	reps := make([]*wire.BenchReport, 2)
	for i, p := range parts {
		f, err := os.Open(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		reps[i], err = wire.DecodeBenchReport(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
	}
	if reps[0].OutcomeHash != reps[1].OutcomeHash {
		return fmt.Errorf("outcome hashes differ: %s vs %s — replay is not deterministic",
			reps[0].OutcomeHash, reps[1].OutcomeHash)
	}
	fmt.Printf("qosload: outcome hashes match (%s)\n", reps[0].OutcomeHash)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qosload: %v\n", err)
	os.Exit(1)
}
