package qosalloc

// API v2: functional options (DESIGN.md §9). The v1 facade exposed the
// bare internal option structs (EngineOptions, ManagerOptions) at every
// constructor; v2 entry points — NewService, NewRetrievalEngine,
// NewRetrievalPool, NewAllocationManager — take a variadic Option list
// drawn from one shared vocabulary, so the same WithThreshold tunes a
// standalone engine, a pool, a manager, or the whole service, and new
// knobs never break existing call sites. The v1 constructors remain as
// deprecated shims.

import (
	"qosalloc/internal/alloc"
	"qosalloc/internal/obs"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/serve"
)

// config is the merged option state every v2 constructor draws from;
// each constructor reads the fields relevant to it and ignores the
// rest (a WithShards passed to NewRetrievalEngine is harmless).
type config struct {
	serve     serve.Config
	maxIdle   int // engine-pool idle cap; 0 = pool default
	maxTokens int // token-cache LRU cap; 0 = retrieval.DefaultMaxTokens
	reg       *obs.Registry

	// Fleet construction state (NewFleet only): nodes, tenant→class
	// bindings and class budgets, all kept in declaration order so a
	// fleet built from the same option list replays bit-identically.
	fleetNodes   []fleetNodeSpec
	tenantBinds  []tenantBinding
	classBudgets []classBudgetDef
}

// Option configures a v2 entry point (NewService, NewRetrievalEngine,
// NewRetrievalPool, NewAllocationManager).
type Option func(*config)

// WithShards sets how many retrieval engines the service partitions the
// case base across (service only).
func WithShards(n int) Option { return func(c *config) { c.serve.Shards = n } }

// WithBatchWindow sets the service's micro-batch linger budget in
// sim-time microseconds; zero flushes batches as soon as the shard
// queue runs dry (service only).
func WithBatchWindow(w Micros) Option { return func(c *config) { c.serve.BatchWindow = w } }

// WithMaxBatch bounds how many requests one shard coalesces per
// micro-batch (service only).
func WithMaxBatch(n int) Option { return func(c *config) { c.serve.MaxBatch = n } }

// WithMaxQueue bounds each shard's admission queue; submissions beyond
// it are shed with *ErrOverload (service only).
func WithMaxQueue(n int) Option { return func(c *config) { c.serve.MaxQueue = n } }

// WithThreshold rejects candidates whose similarity falls below t at
// both the retrieval and the allocation layer.
func WithThreshold(t float64) Option {
	return func(c *config) {
		c.serve.Engine.Threshold = t
		c.serve.Manager.Threshold = t
	}
}

// WithLocalMeasure replaces the eq. (1) linear local similarity.
func WithLocalMeasure(m LocalMeasure) Option { return func(c *config) { c.serve.Engine.Local = m } }

// WithAmalgamation replaces the eq. (2) weighted-sum amalgamation.
func WithAmalgamation(a Amalgamation) Option {
	return func(c *config) { c.serve.Engine.Amalgamation = a }
}

// WithKeepLocals retains the per-attribute score breakdown in results
// (and disables the service's token fast-path, which cannot carry it).
func WithKeepLocals(keep bool) Option { return func(c *config) { c.serve.Engine.KeepLocals = keep } }

// WithCompactLayout serves retrieval from the block-compacted memory
// layout (the paper's §5 projection): scores come from the branch-free
// Q15 kernel over structure-of-arrays attribute blocks and are reported
// at datapath precision. Results are bit-identical to the hardware
// datapath at every shard count. The option applies only with the
// paper's default measures — WithLocalMeasure, WithAmalgamation or
// WithKeepLocals silently keep the floating-point path.
func WithCompactLayout(on bool) Option {
	return func(c *config) { c.serve.Engine.CompactLayout = on }
}

// WithNBest bounds how many retrieval candidates the allocation layer
// checks for feasibility (§5 n-most-similar extension).
func WithNBest(n int) Option { return func(c *config) { c.serve.Manager.NBest = n } }

// WithPreemption permits evicting strictly lower-priority tasks when
// the best match has no free capacity.
func WithPreemption(allow bool) Option {
	return func(c *config) { c.serve.Manager.AllowPreemption = allow }
}

// WithBypassTokens enables the §3 repeated-call shortcut in the
// allocation manager.
func WithBypassTokens(use bool) Option {
	return func(c *config) { c.serve.Manager.UseBypassTokens = use }
}

// WithPowerWeight trades QoS similarity against power when ranking
// candidates (zero keeps the paper's pure-similarity ranking).
func WithPowerWeight(w float64) Option { return func(c *config) { c.serve.Manager.PowerWeight = w } }

// WithLearning turns on live case-base mutation (service only): the
// Service's Observe/Retain/Retire/CommitNow commit through the epoch
// snapshot pipeline while readers keep retrieving. alpha is the EWMA
// weight of new observations in (0, 1] (out of range falls back to the
// default 0.5); foldThreshold trips a commit once that many attribute
// values carry pending LSB-visible revisions (<= 0 falls back to 64);
// maxAge trips a commit once the oldest pending observation is that old
// on the sim clock (0 disables the age bound). Without this option the
// case base is frozen and mutation calls return ErrLearningOff.
func WithLearning(alpha float64, foldThreshold int, maxAge Micros) Option {
	return func(c *config) {
		c.serve.Learning = serve.LearnConfig{
			Enabled:       true,
			Alpha:         alpha,
			FoldThreshold: foldThreshold,
			MaxAge:        maxAge,
		}
	}
}

// WithRegistry instruments the constructed component on reg — the
// service wires its own metrics plus every shard engine and the
// manager; engines, pools and managers wire their layer's bundle.
func WithRegistry(reg *ObsRegistry) Option { return func(c *config) { c.reg = reg } }

// WithMaxIdle bounds an engine pool's idle list (pool only).
func WithMaxIdle(n int) Option { return func(c *config) { c.maxIdle = n } }

// WithMaxTokens bounds the bypass token cache's LRU retention
// (manager only; the service sizes its shard caches internally).
func WithMaxTokens(n int) Option { return func(c *config) { c.maxTokens = n } }

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// --- Service (the concurrent allocation front end) ---------------------

// Service-layer types (DESIGN.md §9).
type (
	// Service is the concurrent allocation service: the case base
	// sharded across retrieval engines, concurrent requests coalesced
	// into deduplicated micro-batches, bounded admission queues, and
	// placements serialized into the allocation manager. Safe for
	// concurrent use; create with NewService, dispose with Close.
	Service = serve.Service
	// ServiceConfig is the explicit configuration behind the Options.
	ServiceConfig = serve.Config
	// ServiceStats snapshots the service counters.
	ServiceStats = serve.Stats
	// ErrOverload is the typed admission-control rejection with its
	// retry-after hint.
	ErrOverload = serve.ErrOverload
	// RetrieveOutcome is one Service.RetrieveBatch element.
	RetrieveOutcome = serve.RetrieveOutcome
	// BatchResult is one Service.AllocateBatch element.
	BatchResult = serve.BatchResult
)

// Service-layer sentinel errors.
var (
	// ErrServiceClosed reports calls into a closed Service.
	ErrServiceClosed = serve.ErrClosed
	// ErrServiceDraining reports calls into a Service whose graceful
	// shutdown has begun: admission is closed but queued work is still
	// being flushed. It wraps ErrServiceClosed, so existing
	// errors.Is(err, ErrServiceClosed) checks keep rejecting, while a
	// front end can distinguish drain (retry another replica soon) via
	// errors.Is(err, ErrServiceDraining).
	ErrServiceDraining = serve.ErrDraining
	// ErrCanceled marks retrievals abandoned because the caller's
	// context died; errors.Is(err, ErrCanceled) and context.Cause both
	// work on it.
	ErrCanceled = retrieval.ErrCanceled
)

// NewService builds the concurrent allocation service over a case base
// and runtime:
//
//	svc := qosalloc.NewService(cb, rt,
//		qosalloc.WithShards(8),
//		qosalloc.WithThreshold(0.7),
//		qosalloc.WithRegistry(reg))
//	defer svc.Close()
//	d, err := svc.Allocate(ctx, "mp3", req, 5)
func NewService(cb *CaseBase, rt *Runtime, opts ...Option) *Service {
	c := buildConfig(opts)
	s := serve.New(cb, rt, c.serve)
	s.Instrument(c.reg) // nil registry yields dangling bundles (no-op)
	return s
}

// --- v2 constructors for the lower layers ------------------------------

// NewRetrievalEngine returns the reference retrieval engine over cb.
// Zero options give the paper's measure: eq. (1) linear local
// similarity and eq. (2) weighted-sum amalgamation.
func NewRetrievalEngine(cb *CaseBase, opts ...Option) *Engine {
	c := buildConfig(opts)
	e := retrieval.NewEngine(cb, c.serve.Engine)
	e.Instrument(retrieval.NewMetrics(c.reg))
	return e
}

// NewRetrievalPool returns a concurrency-safe retrieval front end over
// one shared case base.
func NewRetrievalPool(cb *CaseBase, opts ...Option) *EnginePool {
	c := buildConfig(opts)
	p := retrieval.NewPool(cb, c.serve.Engine)
	if c.maxIdle > 0 {
		p.SetMaxIdle(c.maxIdle)
	}
	p.Instrument(retrieval.NewMetrics(c.reg))
	return p
}

// NewAllocationManager builds the allocation manager over a case base
// and runtime (WithThreshold also configures its internal retrieval
// engine, matching the v1 ManagerOptions behavior).
func NewAllocationManager(cb *CaseBase, rt *Runtime, opts ...Option) *Manager {
	c := buildConfig(opts)
	m := alloc.New(cb, rt, c.serve.Manager)
	if c.maxTokens > 0 {
		m.TokenCache().SetMaxTokens(c.maxTokens)
	}
	m.Instrument(c.reg)
	return m
}
