package qosalloc

import (
	"io"
	"math/rand"

	"qosalloc/internal/alloc"
	"qosalloc/internal/appapi"
	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/cbjson"
	"qosalloc/internal/device"
	"qosalloc/internal/experiments"
	"qosalloc/internal/fault"
	"qosalloc/internal/fixed"
	"qosalloc/internal/hwapi"
	"qosalloc/internal/hwsim"
	"qosalloc/internal/learn"
	"qosalloc/internal/mb32"
	"qosalloc/internal/memlist"
	"qosalloc/internal/obs"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtl"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/serve"
	"qosalloc/internal/similarity"
	"qosalloc/internal/swret"
	"qosalloc/internal/synth"
	"qosalloc/internal/workload"
)

// --- Attribute vocabulary ----------------------------------------------

// Attribute model: IDs, payloads and design-time definitions with
// global bounds (the source of each attribute type's dmax in eq. 1).
type (
	// AttrID identifies an attribute type system-wide.
	AttrID = attr.ID
	// AttrValue is a 16-bit attribute payload.
	AttrValue = attr.Value
	// AttrKind distinguishes numeric, ordinal and flag attributes.
	AttrKind = attr.Kind
	// AttrDef declares an attribute type with its design-global bounds.
	AttrDef = attr.Def
	// AttrPair is one (ID, value) attribute instance.
	AttrPair = attr.Pair
	// Registry is the sealed design-time attribute dictionary.
	Registry = attr.Registry
)

// Attribute kinds.
const (
	Numeric = attr.Numeric
	Ordinal = attr.Ordinal
	Flag    = attr.Flag
)

// NewRegistry returns an empty attribute registry.
func NewRegistry() *Registry { return attr.NewRegistry() }

// --- Case base ----------------------------------------------------------

// Case-base model: the fig. 3/5 implementation tree.
type (
	// TypeID identifies a basic function type.
	TypeID = casebase.TypeID
	// ImplID identifies an implementation variant within its type.
	ImplID = casebase.ImplID
	// Target is an execution resource class (FPGA, DSP, GP processor).
	Target = casebase.Target
	// Footprint is what a variant consumes when instantiated.
	Footprint = casebase.Footprint
	// Implementation is one variant with its QoS attribute set.
	Implementation = casebase.Implementation
	// FunctionType is one type node with its variants.
	FunctionType = casebase.FunctionType
	// CaseBase is the validated, immutable implementation tree.
	CaseBase = casebase.CaseBase
	// CaseBaseBuilder accumulates and validates a case base.
	CaseBaseBuilder = casebase.Builder
	// Constraint is one requested QoS attribute with its weight.
	Constraint = casebase.Constraint
	// Request is a QoS-constrained function request.
	Request = casebase.Request
)

// Execution targets.
const (
	TargetFPGA = casebase.TargetFPGA
	TargetDSP  = casebase.TargetDSP
	TargetGPP  = casebase.TargetGPP
)

// NewCaseBaseBuilder returns a builder validating against reg.
func NewCaseBaseBuilder(reg *Registry) *CaseBaseBuilder { return casebase.NewBuilder(reg) }

// NewRequest builds a request for function type t, sorting constraints
// by attribute ID as the list layouts require.
func NewRequest(t TypeID, cs ...Constraint) Request { return casebase.NewRequest(t, cs...) }

// PaperCaseBase returns the paper's §3 FIR-equalizer example tree.
func PaperCaseBase() (*CaseBase, error) { return casebase.PaperCaseBase() }

// PaperRegistry returns the §3 attribute dictionary.
func PaperRegistry() *Registry { return casebase.PaperRegistry() }

// PaperRequest returns the fig. 3 request {bitwidth 16, stereo, 40 kS/s}.
func PaperRequest() Request { return casebase.PaperRequest() }

// --- Similarity & retrieval ---------------------------------------------

// Retrieval engines and similarity measures.
type (
	// LocalMeasure scores one attribute comparison into [0, 1].
	LocalMeasure = similarity.Local
	// Amalgamation combines weighted local similarities (eq. 2).
	Amalgamation = similarity.Amalgamation
	// EngineOptions configure a retrieval engine.
	EngineOptions = retrieval.Options
	// Engine is the float64 reference retrieval engine.
	Engine = retrieval.Engine
	// Result is one scored implementation variant.
	Result = retrieval.Result
	// LocalScore is one attribute-level comparison (a Table 1 row).
	LocalScore = retrieval.LocalScore
	// FixedEngine is the bit-exact 16-bit datapath twin.
	FixedEngine = retrieval.FixedEngine
	// FixedResult is a Q15-scored variant.
	FixedResult = retrieval.FixedResult
	// ErrNoMatch reports that nothing cleared the threshold.
	ErrNoMatch = retrieval.ErrNoMatch
	// Token pins a previous selection for repeated calls.
	Token = retrieval.Token
	// TokenCache maps request signatures to bypass tokens.
	TokenCache = retrieval.TokenCache
	// EnginePool is the concurrency-safe retrieval front end.
	EnginePool = retrieval.Pool
	// Q15 is the 16-bit fixed-point similarity format.
	Q15 = fixed.Q15
)

// NewEngine returns the reference retrieval engine over cb. Zero-value
// options give the paper's measure: eq. (1) linear local similarity and
// eq. (2) weighted-sum amalgamation.
//
// Deprecated: use NewRetrievalEngine with functional options
// (WithThreshold, WithLocalMeasure, ...); this v1 shim remains for
// existing call sites.
func NewEngine(cb *CaseBase, opt EngineOptions) *Engine { return retrieval.NewEngine(cb, opt) }

// NewFixedEngine returns the 16-bit fixed-point engine over cb.
func NewFixedEngine(cb *CaseBase) *FixedEngine { return retrieval.NewFixedEngine(cb) }

// NewTokenCache returns an empty bypass-token cache.
func NewTokenCache() *TokenCache { return retrieval.NewTokenCache() }

// NewEnginePool returns a retrieval front end safe for concurrent use
// by many application goroutines over one shared case base.
//
// Deprecated: use NewRetrievalPool with functional options (WithMaxIdle,
// WithThreshold, ...); this v1 shim remains for existing call sites.
func NewEnginePool(cb *CaseBase, opt EngineOptions) *EnginePool {
	return retrieval.NewPool(cb, opt)
}

// LocalMeasureByName resolves "linear", "quadratic", "exact" or
// "at-least".
func LocalMeasureByName(name string) (LocalMeasure, error) { return similarity.LocalByName(name) }

// AmalgamationByName resolves "weighted-sum", "minimum", "maximum" or
// "weighted-euclid".
func AmalgamationByName(name string) (Amalgamation, error) {
	return similarity.AmalgamationByName(name)
}

// --- Memory images -------------------------------------------------------

// The 16-bit linear-list memory images of §4.1.
type (
	// MemImage is a block of 16-bit words (a BRAM initialization).
	MemImage = memlist.Image
	// MemoryReport carries the Table 3 consumption figures.
	MemoryReport = memlist.MemoryReport
)

// EncodeTree lays out the fig. 5 implementation tree.
func EncodeTree(cb *CaseBase) (*MemImage, error) { return memlist.EncodeTree(cb) }

// EncodeRequest lays out the fig. 4 (left) request list.
func EncodeRequest(req Request) (*MemImage, error) { return memlist.EncodeRequest(req) }

// EncodeSupplemental lays out the fig. 4 (right) supplemental list with
// pre-computed reciprocals.
func EncodeSupplemental(reg *Registry) *MemImage { return memlist.EncodeSupplemental(reg) }

// MemoryFootprint computes the Table 3 figures for a capacity shape.
func MemoryFootprint(types, implsPerType, attrsPerImpl, reqAttrs, attrUniverse int) MemoryReport {
	return memlist.Report(types, implsPerType, attrsPerImpl, reqAttrs, attrUniverse)
}

// --- Hardware unit --------------------------------------------------------

// The cycle-accurate hardware retrieval unit.
type (
	// HWConfig selects hardware variants (block-compact fetch, trace).
	HWConfig = hwsim.Config
	// HWResult is the unit's output with its cycle count.
	HWResult = hwsim.Result
	// HWUnit is the simulated retrieval unit.
	HWUnit = hwsim.Unit
	// SynthReport is the Table 2 style synthesis estimate.
	SynthReport = synth.Report
	// SynthDevice is an FPGA part with resource totals.
	SynthDevice = synth.Device
)

// HWTrace records FSM and datapath activity during a hardware run.
type HWTrace = rtl.Trace

// NewHWTrace returns an empty trace to pass in HWConfig.Trace.
func NewHWTrace() *HWTrace { return rtl.NewTrace() }

// WriteVCD renders a recorded trace as an IEEE 1364 value change dump
// for waveform viewers.
func WriteVCD(w io.Writer, t *HWTrace, module string) error { return rtl.WriteVCD(w, t, module) }

// HWRetrieve runs one hardware retrieval for req against cb.
func HWRetrieve(cb *CaseBase, req Request, cfg HWConfig) (HWResult, error) {
	return hwsim.Retrieve(cb, req, cfg)
}

// NewHWUnit builds a retrieval unit over pre-encoded memory images.
func NewHWUnit(tree, supp, req *MemImage, cfg HWConfig) *HWUnit {
	return hwsim.New(tree, supp, req, cfg)
}

// EstimateSynthesis reproduces the Table 2 synthesis report for the
// retrieval unit on the given device (use XC2V3000 for the paper's).
func EstimateSynthesis(dev SynthDevice) SynthReport {
	return synth.Estimate(synth.RetrievalUnitNetlist(13), dev, synth.VirtexII())
}

// Virtex-II parts.
var (
	XC2V1000 = synth.XC2V1000
	XC2V3000 = synth.XC2V3000
	XC2V6000 = synth.XC2V6000
)

// --- Software baseline -----------------------------------------------------

// The MicroBlaze-class software retrieval.
type (
	// SWRunner executes the retrieval routine on the CPU model.
	SWRunner = swret.Runner
	// SWResult is a software retrieval outcome with cycle cost.
	SWResult = swret.Result
	// CPUCostModel is the per-class cycle cost table.
	CPUCostModel = mb32.CostModel
)

// NewSWRunner returns the software baseline on the 2004-era base
// MicroBlaze configuration (no barrel shifter).
func NewSWRunner() *SWRunner { return swret.NewRunner() }

// NewSWRunnerWithCosts selects an explicit CPU cost model.
func NewSWRunnerWithCosts(c CPUCostModel) *SWRunner { return swret.NewRunnerWithCosts(c) }

// MicroBlazeCosts is the barrel-shifter-equipped cost model.
func MicroBlazeCosts() CPUCostModel { return mb32.MicroBlazeCosts() }

// MicroBlazeBaseCosts is the 2004-era default core cost model.
func MicroBlazeBaseCosts() CPUCostModel { return mb32.MicroBlazeBaseCosts() }

// --- System: devices, runtime, allocation ----------------------------------

// Platform and allocation-manager layer.
type (
	// Micros is simulation time in microseconds.
	Micros = device.Micros
	// DeviceID names a device instance.
	DeviceID = device.ID
	// Device hosts function implementations.
	Device = device.Device
	// FPGADevice is a run-time reconfigurable device with slots.
	FPGADevice = device.FPGA
	// FPGASlot is one partially reconfigurable region.
	FPGASlot = device.Slot
	// ProcessorDevice hosts software tasks (DSP or GPP).
	ProcessorDevice = device.Processor
	// Repository is the FLASH bitstream/opcode store.
	Repository = device.Repository
	// Blob is one stored configuration image (bitstream or opcode).
	Blob = device.Blob
	// Runtime is the task layer with adaptive priorities.
	Runtime = rtsys.System
	// RuntimeTask is one managed function instantiation.
	RuntimeTask = rtsys.Task
	// TaskID is a run-time task handle.
	TaskID = rtsys.TaskID
	// Manager is the QoS function-allocation manager.
	Manager = alloc.Manager
	// ManagerOptions tune the allocation policy.
	ManagerOptions = alloc.Options
	// Decision reports a successful allocation.
	Decision = alloc.Decision
	// ErrNoFeasible carries the alternatives offered when nothing
	// placeable matched.
	ErrNoFeasible = alloc.ErrNoFeasible
)

// NewFPGADevice builds an FPGA with the given slots and
// reconfiguration-port bandwidth (bytes per microsecond).
func NewFPGADevice(name DeviceID, slots []FPGASlot, configBytesPerMicro int) *FPGADevice {
	return device.NewFPGA(name, slots, configBytesPerMicro)
}

// NewProcessorDevice builds a DSP or GPP with load (permille) and memory
// (bytes) capacities.
func NewProcessorDevice(name DeviceID, kind Target, loadCapacity, memCapacity int) *ProcessorDevice {
	return device.NewProcessor(name, kind, loadCapacity, memCapacity)
}

// NewRepository returns an empty FLASH repository with the given
// streaming bandwidth (bytes per microsecond).
func NewRepository(bytesPerMicro int) *Repository { return device.NewRepository(bytesPerMicro) }

// NewRuntime builds the run-time system over devices and a repository.
func NewRuntime(repo *Repository, devs ...Device) *Runtime { return rtsys.NewSystem(repo, devs...) }

// NewManager builds the allocation manager over a case base and runtime.
//
// Deprecated: use NewAllocationManager with functional options
// (WithNBest, WithPreemption, WithRegistry, ...), or NewService for the
// concurrent batching front end; this v1 shim remains for existing call
// sites.
func NewManager(cb *CaseBase, sys *Runtime, opt ManagerOptions) *Manager {
	return alloc.New(cb, sys, opt)
}

// --- Fault injection & degradation -------------------------------------------

// Fault-tolerance layer: scripted fault injection against the runtime,
// health-aware devices, and the allocation manager's degrade-and-retry
// recovery.
type (
	// DeviceHealth is a device fault state (healthy/degraded/failed).
	DeviceHealth = device.Health
	// TaskState is a run-time task lifecycle state.
	TaskState = rtsys.State
	// FaultKind classifies one injected fault.
	FaultKind = fault.Kind
	// FaultEvent is one scripted fault.
	FaultEvent = fault.Event
	// FaultPlan is a declarative fault schedule.
	FaultPlan = fault.Plan
	// FaultStormSpec parameterizes a seed-driven fault storm.
	FaultStormSpec = fault.StormSpec
	// FaultStormTarget names one device a storm may hit.
	FaultStormTarget = fault.StormTarget
	// FaultInjector replays a plan against a runtime.
	FaultInjector = fault.Injector
	// FaultApplied records one injected event and what it hit.
	FaultApplied = fault.Applied
	// Degradation names the QoS lost by a fallback placement.
	Degradation = alloc.Degradation
	// DegradationReport is the structured rejection of degrade-and-retry.
	DegradationReport = alloc.DegradationReport
	// Recovery is the degrade-and-retry outcome for one stranded task.
	Recovery = alloc.Recovery
)

// Device health states.
const (
	DeviceHealthy  = device.Healthy
	DeviceDegraded = device.Degraded
	DeviceFailed   = device.Failed
)

// Task lifecycle states, including the fault path.
const (
	TaskPending     = rtsys.Pending
	TaskConfiguring = rtsys.Configuring
	TaskRunning     = rtsys.Running
	TaskPreempted   = rtsys.Preempted
	TaskDone        = rtsys.Done
	TaskFailed      = rtsys.Failed
	TaskRecovering  = rtsys.Recovering
)

// Fault kinds.
const (
	FaultSlotFail    = fault.SlotFail
	FaultDeviceFail  = fault.DeviceFail
	FaultConfigError = fault.ConfigError
	FaultSEU         = fault.SEU
)

// Sentinel errors of the fault path, for errors.Is.
var (
	// ErrDeviceFailed marks placement attempts on a failed device.
	ErrDeviceFailed = device.ErrDeviceFailed
	// ErrNoViableVariant marks exhausted degrade-and-retry (wrapped by
	// both ErrNoFeasible and DegradationReport).
	ErrNoViableVariant = alloc.ErrNoViableVariant
	// ErrBadTransition marks task-lifecycle misuse.
	ErrBadTransition = rtsys.ErrBadTransition
)

// ParseFaultPlan parses the fault-plan DSL: ';'-separated
// "at:kind:device[:slot]" events, e.g.
// "5000:slotfail:fpga0:1;9000:configerr:fpga0;40000:devfail:dsp0".
func ParseFaultPlan(s string) (FaultPlan, error) { return fault.ParsePlan(s) }

// FaultStorm draws a fault schedule from an explicit random source.
func FaultStorm(r *rand.Rand, spec FaultStormSpec) (FaultPlan, error) { return fault.Storm(r, spec) }

// NewFaultInjector binds a fault plan to a runtime.
func NewFaultInjector(sys *Runtime, p FaultPlan) *FaultInjector { return fault.NewInjector(sys, p) }

// --- Workloads & experiments -------------------------------------------------

// Workload generation and paper-experiment drivers.
type (
	// CaseBaseSpec parameterizes a synthetic case base.
	CaseBaseSpec = workload.CaseBaseSpec
	// RequestStreamSpec parameterizes a request stream.
	RequestStreamSpec = workload.RequestStreamSpec
	// AppProfile is one fig. 1 application script.
	AppProfile = workload.AppProfile
	// TenantSpec names one tenant with its QoS class and mix weight.
	TenantSpec = workload.TenantSpec
	// TenantMixSpec parameterizes the tenant dimension of a stream.
	TenantMixSpec = workload.TenantMixSpec
	// TenantedRequest is one request with its tenant attribution.
	TenantedRequest = workload.TenantedRequest
	// TenantCount is one tenant's request tally.
	TenantCount = workload.TenantCount
	// PaperExperiment is one registered table/figure driver.
	PaperExperiment = experiments.Experiment
)

// GenCaseBase synthesizes a validated case base.
func GenCaseBase(spec CaseBaseSpec) (*CaseBase, *Registry, error) { return workload.GenCaseBase(spec) }

// GenRequests synthesizes a valid request stream over cb.
func GenRequests(cb *CaseBase, reg *Registry, spec RequestStreamSpec) ([]Request, error) {
	return workload.GenRequests(cb, reg, spec)
}

// AssignTenants attributes each request to a tenant by weighted draw
// from an explicit seed or source.
func AssignTenants(reqs []Request, spec TenantMixSpec) ([]TenantedRequest, error) {
	return workload.AssignTenants(reqs, spec)
}

// GenTenantedRequests synthesizes a multi-tenant request stream.
func GenTenantedRequests(cb *CaseBase, reg *Registry, stream RequestStreamSpec, mix TenantMixSpec) ([]TenantedRequest, error) {
	return workload.GenTenantedRequests(cb, reg, stream, mix)
}

// ParseTenantMix parses "tenant=class[:weight],..." CLI tenant mixes.
func ParseTenantMix(s string) ([]TenantSpec, error) { return workload.ParseTenantMix(s) }

// DefaultTenantMix is the gold/silver/bronze demo mix.
func DefaultTenantMix() []TenantSpec { return workload.DefaultTenantMix() }

// TenantCounts tallies a tenanted stream by tenant ID, sorted by ID.
func TenantCounts(reqs []TenantedRequest) []TenantCount { return workload.TenantCounts(reqs) }

// PaperScaleSpec is the Table 3 capacity point (15×10×10).
func PaperScaleSpec() CaseBaseSpec { return workload.PaperScale() }

// InfotainmentCaseBase returns the fig. 1 demo platform's tree.
func InfotainmentCaseBase() (*CaseBase, *Registry, error) { return workload.InfotainmentCaseBase() }

// FigureOneApps returns the fig. 1 application mix as timed profiles.
func FigureOneApps() []AppProfile { return workload.Apps() }

// Experiments returns every registered paper-reproduction driver.
func Experiments() []PaperExperiment { return experiments.All() }

// ExperimentByID returns one reproduction driver.
func ExperimentByID(id string) (PaperExperiment, bool) { return experiments.ByID(id) }

// RunAllExperiments regenerates every table and figure into w.
func RunAllExperiments(w io.Writer) error { return experiments.RunAll(w) }

// --- Observability -------------------------------------------------------------

// Metric registry and snapshot types (DESIGN.md §7). Attach one registry
// to the pipeline via Manager.Instrument, Runtime.Instrument and
// FaultInjector.Instrument; uninstrumented components cost a few atomic
// ops and record nothing.
type (
	// ObsRegistry collects counters, gauges, histograms and trace rings
	// for every instrumented layer.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a point-in-time, JSON-serializable metric copy.
	ObsSnapshot = obs.Snapshot
	// ObsEvent is one trace-ring entry (sim-time stamped).
	ObsEvent = obs.Event
	// RetrievalMetrics is the retrieval layer's metric bundle, for
	// instrumenting standalone engines and pools (Manager.Instrument
	// wires its own engines automatically).
	RetrievalMetrics = retrieval.Metrics
)

// NewObsRegistry returns an empty metric registry. It never reads the
// wall clock or a random source: deterministic simulations produce
// bit-exact metric snapshots on every replay.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewRetrievalMetrics registers the retrieval metric set on reg, for use
// with Engine.Instrument or EnginePool.Instrument.
func NewRetrievalMetrics(reg *ObsRegistry) *RetrievalMetrics { return retrieval.NewMetrics(reg) }

// --- Learning: the fig. 2 CBR cycle ------------------------------------------

// Run-time case-base revision and retention (§5 future work). The
// first-class path is the Service mutation API — build the service with
// WithLearning and call Observe/Retain/Retire/CommitNow while it
// serves; every commit installs a fresh epoch snapshot without pausing
// readers (DESIGN.md §14).
type (
	// Learner accumulates revisions/retentions over a case base.
	//
	// Deprecated: the manual Learner → Rebuild → construct-new-service
	// flow is the v1 shim. Use WithLearning plus the Service mutation
	// API, which folds observations off the read path and swaps epochs
	// without a service restart. Learner remains for offline batch
	// revision of a case base at rest.
	Learner = learn.Learner
	// Observation is one run-time QoS measurement of a deployed
	// variant (also the Service.Observe payload).
	Observation = learn.Observation
	// EpochStats snapshots the Service's mutation-side counters:
	// committed epoch, commits by cause, pending delta state.
	EpochStats = serve.EpochStats
	// ErrStaleEpoch reports work prepared against an epoch a commit has
	// since retired; the caller re-reads the committed state (Epoch)
	// and retries.
	ErrStaleEpoch = serve.ErrStaleEpoch
)

// ErrLearningOff reports a Service mutation call without WithLearning:
// the case base is frozen for the process lifetime.
var ErrLearningOff = serve.ErrLearningOff

// NewLearner returns a learner over base with EWMA weight alpha in
// (0, 1].
//
// Deprecated: see Learner. New code passes WithLearning to NewService
// and mutates through Service.Observe/Retain/Retire/CommitNow.
func NewLearner(base *CaseBase, alpha float64) (*Learner, error) {
	return learn.NewLearner(base, alpha)
}

// --- Statistical similarity (§2.2 alternative) -------------------------------

// Mahalanobis is the covariance-whitened distance the paper evaluates
// and rejects for hardware cost.
type Mahalanobis = similarity.Mahalanobis

// NewMahalanobis builds the measure from implementation attribute
// vectors (one row per implementation).
func NewMahalanobis(samples [][]float64) (*Mahalanobis, error) {
	return similarity.NewMahalanobis(samples)
}

// --- Persistence ---------------------------------------------------------------

// SaveCaseBase writes cb (registry included) to w as a versioned JSON
// document.
func SaveCaseBase(w io.Writer, cb *CaseBase) error { return cbjson.Encode(w, cb) }

// LoadCaseBase reads a JSON document produced by SaveCaseBase and
// rebuilds a fully validated case base.
func LoadCaseBase(r io.Reader) (*CaseBase, error) { return cbjson.Decode(r) }

// --- Application-API & HW-Layer API (fig. 1 levels) ----------------------------

// QoS negotiation sessions (Application-API) and platform status
// snapshots (HW-Layer API).
type (
	// AppSession drives the §3 negotiation protocol for one
	// application.
	AppSession = appapi.Session
	// AppSessionOptions declare the application's relaxation policy.
	AppSessionOptions = appapi.Options
	// AppCall is one negotiated sub-function call with its trail.
	AppCall = appapi.Call
	// NegotiationStep is one round of a call's negotiation trail.
	NegotiationStep = appapi.Step
	// ErrNegotiationFailed reports an exhausted negotiation.
	ErrNegotiationFailed = appapi.ErrNegotiationFailed
	// PlatformStatus is one load/power snapshot of the platform.
	PlatformStatus = hwapi.Status
	// PlatformMonitor keeps a bounded history of snapshots.
	PlatformMonitor = hwapi.Monitor
)

// Negotiation outcomes.
const (
	OutcomePlaced         = appapi.OutcomePlaced
	OutcomeBelowThreshold = appapi.OutcomeBelowThreshold
	OutcomeInfeasible     = appapi.OutcomeInfeasible
)

// OpenSession opens an Application-API session for app at the given
// base priority.
func OpenSession(m *Manager, app string, prio int, opt AppSessionOptions) *AppSession {
	return appapi.NewSession(m, app, prio, opt)
}

// PlatformSnapshot queries the HW-Layer API for the current system load
// and power consumption status.
func PlatformSnapshot(sys *Runtime) PlatformStatus { return hwapi.Snapshot(sys) }

// NewPlatformMonitor returns a monitor keeping up to capacity snapshots.
func NewPlatformMonitor(sys *Runtime, capacity int) *PlatformMonitor {
	return hwapi.NewMonitor(sys, capacity)
}
