package qosalloc

// Benchmark harness: one benchmark per paper table/figure (DESIGN.md §4)
// plus the §5/§4.1 design-choice ablations. Simulated hardware/software
// costs are reported through custom metrics (cycles/op at the simulated
// clock), host-CPU time through the usual ns/op.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"qosalloc/internal/alloc"
	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/cbjson"
	"qosalloc/internal/device"
	"qosalloc/internal/experiments"
	"qosalloc/internal/fixed"
	"qosalloc/internal/hwsim"
	"qosalloc/internal/learn"
	"qosalloc/internal/mb32"
	"qosalloc/internal/memlist"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/similarity"
	"qosalloc/internal/swret"
	"qosalloc/internal/synth"
	"qosalloc/internal/workload"
)

func paperFixtures(b *testing.B) (*casebase.CaseBase, casebase.Request) {
	b.Helper()
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		b.Fatal(err)
	}
	return cb, casebase.PaperRequest()
}

func paperScaleFixtures(b *testing.B) (*casebase.CaseBase, []casebase.Request) {
	b.Helper()
	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{N: 64, ConstraintsPer: 4, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return cb, reqs
}

// BenchmarkTable1Retrieval (E1): the float64 reference retrieval on the
// paper's §3 example.
func BenchmarkTable1Retrieval(b *testing.B) {
	cb, req := paperFixtures(b)
	e := retrieval.NewEngine(cb, retrieval.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Retrieve(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesisEstimate (E2 / Table 2): the area/timing model.
func BenchmarkSynthesisEstimate(b *testing.B) {
	n := synth.RetrievalUnitNetlist(13)
	for i := 0; i < b.N; i++ {
		r := synth.Estimate(n, synth.XC2V3000, synth.VirtexII())
		if r.Slices == 0 {
			b.Fatal("empty estimate")
		}
	}
}

// BenchmarkMemoryImageEncode (E3 / Table 3): encoding the paper-scale
// implementation tree into its BRAM image.
func BenchmarkMemoryImageEncode(b *testing.B) {
	cb, _ := paperScaleFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := memlist.EncodeTree(cb)
		if err != nil {
			b.Fatal(err)
		}
		if img.Size() == 0 {
			b.Fatal("empty image")
		}
	}
}

// BenchmarkHWRetrievalCycles (E4): the cycle-accurate hardware unit at
// paper scale; simulated cycles per retrieval are the headline metric.
func BenchmarkHWRetrievalCycles(b *testing.B) {
	cb, reqs := paperScaleFixtures(b)
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hwsim.Retrieve(cb, reqs[i%len(reqs)], hwsim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "hwcycles/op")
}

// BenchmarkSWRetrievalCycles (E4): the MicroBlaze-class software
// baseline at paper scale.
func BenchmarkSWRetrievalCycles(b *testing.B) {
	cb, reqs := paperScaleFixtures(b)
	r := swret.NewRunner()
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Retrieve(cb, reqs[i%len(reqs)])
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "swcycles/op")
}

// BenchmarkFixedVsFloat (E5): the 16-bit fixed-point engine against the
// float64 engine at paper scale; both run per iteration so the ns/op
// gap is directly visible.
func BenchmarkFixedVsFloat(b *testing.B) {
	cb, reqs := paperScaleFixtures(b)
	b.Run("float64", func(b *testing.B) {
		e := retrieval.NewEngine(cb, retrieval.Options{})
		for i := 0; i < b.N; i++ {
			if _, err := e.Retrieve(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fixed16", func(b *testing.B) {
		fe := retrieval.NewFixedEngine(cb)
		for i := 0; i < b.N; i++ {
			if _, err := fe.Retrieve(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNBestRetrieval (E7): the §5 n-best extension vs repeated
// single-best retrieval.
func BenchmarkNBestRetrieval(b *testing.B) {
	cb, reqs := paperScaleFixtures(b)
	e := retrieval.NewEngine(cb, retrieval.Options{})
	b.Run("n=3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.RetrieveN(reqs[i%len(reqs)], 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("n=1x3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k := 0; k < 3; k++ {
				if _, err := e.Retrieve(reqs[i%len(reqs)]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkCompactFetch (E8): baseline vs §5 block-compacted fetch,
// reporting simulated cycles.
func BenchmarkCompactFetch(b *testing.B) {
	cb, reqs := paperScaleFixtures(b)
	for _, cfg := range []struct {
		name    string
		compact bool
	}{{"baseline", false}, {"compact", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := hwsim.Retrieve(cb, reqs[i%len(reqs)], hwsim.Config{Compact: cfg.compact})
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "hwcycles/op")
		})
	}
}

// BenchmarkBypassToken (E9): token-cache hit vs a full retrieval — the
// repeated-call saving of §3.
func BenchmarkBypassToken(b *testing.B) {
	cb, req := paperFixtures(b)
	e := retrieval.NewEngine(cb, retrieval.Options{})
	tc := retrieval.NewTokenCache()
	best, err := e.Retrieve(req)
	if err != nil {
		b.Fatal(err)
	}
	tc.Store(req, retrieval.Token{Type: req.Type, Impl: best.Impl, Similarity: best.Similarity})
	b.Run("token-hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := tc.Lookup(req); !ok {
				b.Fatal("token lost")
			}
		}
	})
	b.Run("full-retrieval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Retrieve(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEndToEndAllocation (E10): one manager request/release cycle
// on the fig. 1 platform.
func BenchmarkEndToEndAllocation(b *testing.B) {
	res, err := experiments.SystemRun()
	if err != nil {
		b.Fatal(err)
	}
	if res.Failures != 0 {
		b.Fatalf("scenario failed %d allocations", res.Failures)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SystemRun(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReciprocalVsDivide (ablation, DESIGN.md §5): the paper's
// divider-free local similarity vs a true fixed-point division.
func BenchmarkReciprocalVsDivide(b *testing.B) {
	recip := fixed.Recip(36)
	b.Run("mul-recip", func(b *testing.B) {
		var acc fixed.Q15
		for i := 0; i < b.N; i++ {
			acc += fixed.LocalSim(uint32(i&31), recip)
		}
		_ = acc
	})
	b.Run("divide", func(b *testing.B) {
		var acc fixed.Q15
		for i := 0; i < b.N; i++ {
			acc += fixed.SubSat(fixed.OneQ15, fixed.DivQ15(uint32(i&31), 37))
		}
		_ = acc
	})
}

// BenchmarkSortedScanVsRestart (ablation, §4.1): resumable sorted-list
// scanning vs restart-from-top, in simulated hardware cycles.
func BenchmarkSortedScanVsRestart(b *testing.B) {
	cb, reqs := paperScaleFixtures(b)
	for _, cfg := range []struct {
		name    string
		restart bool
	}{{"resumable", false}, {"restart", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := hwsim.Retrieve(cb, reqs[i%len(reqs)], hwsim.Config{RestartScan: cfg.restart})
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "hwcycles/op")
		})
	}
}

// BenchmarkExperimentDrivers keeps the report generators honest: every
// table/figure driver must run cleanly.
func BenchmarkExperimentDrivers(b *testing.B) {
	for _, e := range experiments.All() {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := e.Run(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHWNBest (E7 hardware variant): single-best vs the §5 n-best
// register file in simulated cycles.
func BenchmarkHWNBest(b *testing.B) {
	cb, reqs := paperScaleFixtures(b)
	for _, n := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				u, err := hwsim.Build(cb, reqs[i%len(reqs)], hwsim.Config{NBest: n})
				if err != nil {
					b.Fatal(err)
				}
				res, err := u.Run(1 << 24)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "hwcycles/op")
		})
	}
}

// BenchmarkMahalanobis (E11): construction (covariance + inversion) and
// per-comparison cost of the rejected §2.2 design point.
func BenchmarkMahalanobis(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	const dim = 8
	samples := make([][]float64, 64)
	for i := range samples {
		samples[i] = make([]float64, dim)
		for j := range samples[i] {
			samples[i][j] = r.Float64() * 100
		}
	}
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := similarity.NewMahalanobis(samples); err != nil {
				b.Fatal(err)
			}
		}
	})
	m, err := similarity.NewMahalanobis(samples)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Similarity(samples[i%32], samples[(i+7)%64])
		}
	})
	b.Run("compare-linear", func(b *testing.B) {
		lin := similarity.Linear{}
		for i := 0; i < b.N; i++ {
			var s float64
			for j := 0; j < dim; j++ {
				s += lin.Similarity(
					attrValue(samples[i%32][j]), attrValue(samples[(i+7)%64][j]), 200)
			}
			_ = s
		}
	})
}

func attrValue(f float64) attr.Value { return attr.Value(uint16(f)) }

// BenchmarkLearnRebuild (E13): cost of one revise-and-rebuild cycle at
// paper scale.
func BenchmarkLearnRebuild(b *testing.B) {
	cb, _ := paperScaleFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := learn.NewLearner(cb, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		ft := cb.Types()[0]
		if err := l.Observe(learn.Observation{
			Type: ft.ID, Impl: ft.Impls[0].ID,
			Measured: ft.Impls[0].Attrs[:1],
		}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := l.Rebuild(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemoryImageDecode: parsing the paper-scale tree image back,
// the verification path of the memory tooling.
func BenchmarkMemoryImageDecode(b *testing.B) {
	cb, _ := paperScaleFixtures(b)
	img, err := memlist.EncodeTree(cb)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := memlist.DecodeTree(img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMB32Throughput: host-side simulation speed of the soft-core
// model, in simulated instructions per host second.
func BenchmarkMB32Throughput(b *testing.B) {
	prog := mb32.MustAssemble(`
		addi r1, r0, 1000
	loop:	addi r2, r2, 7
		xor  r3, r2, r1
		addi r1, r1, -1
		bgtz r1, loop
		halt
	`)
	var retired uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mb32.New(prog, 64)
		if _, err := c.Run(10_000); err != nil {
			b.Fatal(err)
		}
		retired += c.Stats.Retired
	}
	b.ReportMetric(float64(retired)/float64(b.N), "instrs/op")
}

// BenchmarkJSONRoundTrip: case-base persistence at paper scale.
func BenchmarkJSONRoundTrip(b *testing.B) {
	cb, _ := paperScaleFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := cbjson.Encode(&buf, cb); err != nil {
			b.Fatal(err)
		}
		if _, err := cbjson.Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultRecovery: the degrade-and-retry path end to end — a
// device failure strands a placed task, the manager re-runs retrieval
// excluding the dead target class and re-places the task on a substitute
// variant. The custom metric reports the simulated recovery latency
// (fault hit → substitute configuration ready) alongside host ns/op.
func BenchmarkFaultRecovery(b *testing.B) {
	cb, req := paperFixtures(b)
	var simLat float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		repo := device.NewRepository(20)
		if err := repo.PopulateFromCaseBase(cb); err != nil {
			b.Fatal(err)
		}
		sys := rtsys.NewSystem(repo,
			device.NewFPGA("fpga0", []device.Slot{
				{Slices: 1500, BRAMs: 8, Multipliers: 16},
				{Slices: 1500, BRAMs: 8, Multipliers: 16},
			}, 66),
			device.NewProcessor("dsp0", casebase.TargetDSP, 1000, 128*1024),
			device.NewProcessor("gpp0", casebase.TargetGPP, 1000, 256*1024),
		)
		m := alloc.New(cb, sys, alloc.Options{})
		if _, err := m.Request("mp3", req, 5); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if _, err := sys.FailDevice("dsp0"); err != nil {
			b.Fatal(err)
		}
		recs := m.RecoverFromFaults()
		if len(recs) != 1 || recs[0].Decision == nil {
			b.Fatalf("recovery = %+v", recs)
		}
		simLat += float64(recs[0].Decision.ReadyAt - sys.Now())
	}
	b.ReportMetric(simLat/float64(b.N), "sim-us/recovery")
}
